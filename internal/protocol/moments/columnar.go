package moments

import (
	"math"

	"dynagg/internal/gossip"
)

// Columnar is the struct-of-arrays form of the dynamic-variance
// protocol: one value owns the whole population's three-component mass
// vectors (w, v, q), reversion targets, and inboxes as dense columns
// (gossip.ColumnarAgent + gossip.ColExchanger). The three-component
// mass does not fit ColMsg's inline (W, V) pair, so messages travel
// payload-free and Deliver reads the emitter's per-round out columns
// via ColMsg.From — every message a host emits in a round carries the
// same mass, so one column slot per host suffices (the isolated-host
// whole simply overwrites the slot with 2× the half).
//
// Byte-identical to a population of *Node agents on the classic path
// for both gossip models.
type Columnar struct {
	cfg Config

	v0, q0        []float64
	w, v, q       []float64
	inW, inV, inQ []float64

	// outW/outV/outQ hold the mass carried by each of host i's
	// messages this round, written in EmitRange and read by Deliver.
	outW, outV, outQ []float64
}

var _ gossip.ColExchanger = (*Columnar)(nil)

// NewColumnar returns the columnar population with data values vs, all
// hosts sharing cfg.
func NewColumnar(vs []float64, cfg Config) *Columnar {
	if cfg.Lambda < 0 || cfg.Lambda > 1 {
		panic("moments: Lambda outside [0,1]")
	}
	n := len(vs)
	c := &Columnar{
		cfg:  cfg,
		v0:   append([]float64(nil), vs...),
		q0:   make([]float64, n),
		w:    make([]float64, n),
		v:    make([]float64, n),
		q:    make([]float64, n),
		inW:  make([]float64, n),
		inV:  make([]float64, n),
		inQ:  make([]float64, n),
		outW: make([]float64, n),
		outV: make([]float64, n),
		outQ: make([]float64, n),
	}
	for i, v0 := range vs {
		c.q0[i] = v0 * v0
		c.w[i] = 1
		c.v[i] = v0
		c.q[i] = v0 * v0
	}
	return c
}

// Len implements gossip.ColumnarAgent.
func (c *Columnar) Len() int { return len(c.w) }

// Mass returns host id's current mass vector.
func (c *Columnar) Mass(id gossip.NodeID) Mass {
	return Mass{W: c.w[id], V: c.v[id], Q: c.q[id]}
}

// BeginRange implements gossip.ColumnarAgent.
func (c *Columnar) BeginRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	for i := lo; i < hi; i++ {
		if alive[i] {
			c.inW[i] = 0
			c.inV[i] = 0
			c.inQ[i] = 0
		}
	}
}

// EmitRange implements gossip.ColumnarAgent: the reverted mass is
// split between a random peer and self, with q treated like v but
// decaying toward v₀² — the same emission, in the same peer-then-self
// order, as Node.Emit.
func (c *Columnar) EmitRange(rc *gossip.ColRound, lo, hi int) {
	λ := c.cfg.Lambda
	alive := rc.Alive
	out := rc.Out
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		id := gossip.NodeID(i)
		halfW := ((1-λ)*c.w[i] + λ) / 2
		halfV := ((1-λ)*c.v[i] + λ*c.v0[i]) / 2
		halfQ := ((1-λ)*c.q[i] + λ*c.q0[i]) / 2
		peer, ok := rc.Pick(id)
		if !ok {
			// Isolated host: the whole reverted mass returns to self.
			c.outW[i] = 2 * halfW
			c.outV[i] = 2 * halfV
			c.outQ[i] = 2 * halfQ
			out = append(out, gossip.ColMsg{To: id, From: id})
			continue
		}
		c.outW[i] = halfW
		c.outV[i] = halfV
		c.outQ[i] = halfQ
		out = append(out,
			gossip.ColMsg{To: peer, From: id},
			gossip.ColMsg{To: id, From: id},
		)
	}
	rc.Out = out
}

// Deliver implements gossip.ColumnarAgent: fold each emitter's out
// mass into its destination's inbox columns, in emitter order.
func (c *Columnar) Deliver(rc *gossip.ColRound, msgs []gossip.ColMsg) {
	for _, m := range msgs {
		c.inW[m.To] += c.outW[m.From]
		c.inV[m.To] += c.outV[m.From]
		c.inQ[m.To] += c.outQ[m.From]
	}
}

// EndRange implements gossip.ColumnarAgent: under push/pull the decay
// is applied to the exchanged mass once per round (Node.EndRound's
// PushPull branch); under push the inbox replaces the mass.
func (c *Columnar) EndRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	if c.cfg.PushPull {
		λ := c.cfg.Lambda
		for i := lo; i < hi; i++ {
			if !alive[i] {
				continue
			}
			c.w[i] = λ + (1-λ)*c.w[i]
			c.v[i] = λ*c.v0[i] + (1-λ)*c.v[i]
			c.q[i] = λ*c.q0[i] + (1-λ)*c.q[i]
		}
		return
	}
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		c.w[i] = c.inW[i]
		c.v[i] = c.inV[i]
		c.q[i] = c.inQ[i]
	}
}

// ExchangePairs implements gossip.ColExchanger: pairwise mass
// averaging of all three components (Node.Exchange) as a flat loop.
func (c *Columnar) ExchangePairs(rc *gossip.ColRound, pairs []gossip.Pair) {
	for _, pr := range pairs {
		a, b := pr.A, pr.B
		mw := (c.w[a] + c.w[b]) / 2
		mv := (c.v[a] + c.v[b]) / 2
		mq := (c.q[a] + c.q[b]) / 2
		c.w[a], c.w[b] = mw, mw
		c.v[a], c.v[b] = mv, mv
		c.q[a], c.q[b] = mq, mq
	}
}

// Mean returns host id's running estimate of the network average.
func (c *Columnar) Mean(id gossip.NodeID) (float64, bool) {
	if c.w[id] <= 1e-12 {
		return 0, false
	}
	return c.v[id] / c.w[id], true
}

// Variance returns host id's running estimate of the network variance,
// clamped at zero exactly as Node.Variance.
func (c *Columnar) Variance(id gossip.NodeID) (float64, bool) {
	if c.w[id] <= 1e-12 {
		return 0, false
	}
	mean := c.v[id] / c.w[id]
	variance := c.q[id]/c.w[id] - mean*mean
	if variance < 0 {
		variance = 0
	}
	return variance, true
}

// StdDev returns host id's running estimate of the network standard
// deviation.
func (c *Columnar) StdDev(id gossip.NodeID) (float64, bool) {
	v, ok := c.Variance(id)
	if !ok {
		return 0, false
	}
	return math.Sqrt(v), true
}

// Estimate implements gossip.ColumnarAgent, reporting the standard
// deviation like Node.Estimate.
func (c *Columnar) Estimate(id gossip.NodeID) (float64, bool) { return c.StdDev(id) }
