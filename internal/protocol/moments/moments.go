// Package moments extends Push-Sum-Revert to the second moment,
// yielding dynamic estimates of the network-wide variance and standard
// deviation — aggregates the paper names among its motivating examples
// (§II: "Examples of aggregates include the sum, count, average, and
// standard deviation").
//
// The construction is the standard moments trick on top of the paper's
// machinery: each host gossips a three-component mass (w, v, q) with
// q initialized to v₀². Every component obeys conservation of mass and
// decays toward its initial value by the same reversion constant λ, so
// the whole vector inherits Push-Sum-Revert's self-healing. At
// convergence
//
//	v/w → E[x]    q/w → E[x²]    Var = q/w − (v/w)²
//
// over the hosts currently participating.
package moments

import (
	"fmt"
	"math"

	"dynagg/internal/gossip"
	"dynagg/internal/xrand"
)

// Mass is the gossiped (weight, value, square) vector.
type Mass struct {
	W float64
	V float64
	Q float64
}

// Config parametrizes a moments host.
type Config struct {
	// Lambda is the reversion constant λ ∈ [0, 1]; zero gives the
	// static protocol.
	Lambda float64
	// PushPull declares that the engine drives the node with pairwise
	// exchanges; the reversion then applies once per round at round
	// end.
	PushPull bool
}

// Node is one dynamic-variance host.
type Node struct {
	id  gossip.NodeID
	cfg Config
	v0  float64
	q0  float64

	w, v, q float64

	inW, inV, inQ float64

	// out is the scratch payload referenced by EmitAppend envelopes.
	out Mass
}

var (
	_ gossip.Agent         = (*Node)(nil)
	_ gossip.Exchanger     = (*Node)(nil)
	_ gossip.AppendEmitter = (*Node)(nil)
)

// New returns a moments host with data value v0.
func New(id gossip.NodeID, v0 float64, cfg Config) *Node {
	if cfg.Lambda < 0 || cfg.Lambda > 1 {
		panic("moments: Lambda outside [0,1]")
	}
	return &Node{id: id, cfg: cfg, v0: v0, q0: v0 * v0, w: 1, v: v0, q: v0 * v0}
}

// ID returns the host id.
func (n *Node) ID() gossip.NodeID { return n.id }

// Mass returns the current mass vector.
func (n *Node) Mass() Mass { return Mass{W: n.w, V: n.v, Q: n.q} }

// BeginRound implements gossip.Agent.
func (n *Node) BeginRound(round int) {
	n.inW, n.inV, n.inQ = 0, 0, 0
}

// Emit implements gossip.Agent: the reverted mass is split between a
// random peer and self, exactly as in Push-Sum-Revert, with q treated
// like v but decaying toward v₀².
func (n *Node) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	λ := n.cfg.Lambda
	half := Mass{
		W: ((1-λ)*n.w + λ) / 2,
		V: ((1-λ)*n.v + λ*n.v0) / 2,
		Q: ((1-λ)*n.q + λ*n.q0) / 2,
	}
	peer, ok := pick()
	if !ok {
		return []gossip.Envelope{{To: n.id, Payload: Mass{W: 2 * half.W, V: 2 * half.V, Q: 2 * half.Q}}}
	}
	return []gossip.Envelope{
		{To: peer, Payload: half},
		{To: n.id, Payload: half},
	}
}

// EmitAppend implements gossip.AppendEmitter: the same emission with
// round-scoped payloads pointing at per-host scratch.
func (n *Node) EmitAppend(dst []gossip.Envelope, round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	λ := n.cfg.Lambda
	half := Mass{
		W: ((1-λ)*n.w + λ) / 2,
		V: ((1-λ)*n.v + λ*n.v0) / 2,
		Q: ((1-λ)*n.q + λ*n.q0) / 2,
	}
	peer, ok := pick()
	if !ok {
		n.out = Mass{W: 2 * half.W, V: 2 * half.V, Q: 2 * half.Q}
		return append(dst, gossip.Envelope{To: n.id, Payload: &n.out})
	}
	n.out = half
	return append(dst,
		gossip.Envelope{To: peer, Payload: &n.out},
		gossip.Envelope{To: n.id, Payload: &n.out},
	)
}

// Receive implements gossip.Agent. Both the boxed Mass of Emit and
// the scratch-backed *Mass of EmitAppend are accepted.
func (n *Node) Receive(payload any) {
	var m Mass
	switch p := payload.(type) {
	case *Mass:
		m = *p
	case Mass:
		m = p
	default:
		panic(fmt.Sprintf("moments: unexpected payload %T", payload))
	}
	n.inW += m.W
	n.inV += m.V
	n.inQ += m.Q
}

// EndRound implements gossip.Agent.
func (n *Node) EndRound(round int) {
	if n.cfg.PushPull {
		λ := n.cfg.Lambda
		n.w = λ + (1-λ)*n.w
		n.v = λ*n.v0 + (1-λ)*n.v
		n.q = λ*n.q0 + (1-λ)*n.q
		return
	}
	n.w, n.v, n.q = n.inW, n.inV, n.inQ
}

// Exchange implements gossip.Exchanger: pairwise mass averaging of all
// three components.
func (n *Node) Exchange(peer gossip.Exchanger) {
	p := peer.(*Node)
	mw := (n.w + p.w) / 2
	mv := (n.v + p.v) / 2
	mq := (n.q + p.q) / 2
	n.w, p.w = mw, mw
	n.v, p.v = mv, mv
	n.q, p.q = mq, mq
}

// Mean returns the host's running estimate of the network average.
func (n *Node) Mean() (float64, bool) {
	if n.w <= 1e-12 {
		return 0, false
	}
	return n.v / n.w, true
}

// Variance returns the host's running estimate of the network variance,
// clamped at zero (transient states can drive the raw moment estimate
// slightly negative).
func (n *Node) Variance() (float64, bool) {
	if n.w <= 1e-12 {
		return 0, false
	}
	mean := n.v / n.w
	variance := n.q/n.w - mean*mean
	if variance < 0 {
		variance = 0
	}
	return variance, true
}

// StdDev returns the host's running estimate of the network standard
// deviation.
func (n *Node) StdDev() (float64, bool) {
	v, ok := n.Variance()
	if !ok {
		return 0, false
	}
	return math.Sqrt(v), true
}

// Estimate implements gossip.Agent, reporting the standard deviation
// (the headline aggregate of this package).
func (n *Node) Estimate() (float64, bool) { return n.StdDev() }
