package moments

import (
	"math"
	"testing"
	"testing/quick"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
)

func trueMoments(values []float64, alive func(int) bool) (mean, variance float64) {
	var sum, sq float64
	n := 0
	for i, v := range values {
		if alive != nil && !alive(i) {
			continue
		}
		sum += v
		sq += v * v
		n++
	}
	mean = sum / float64(n)
	variance = sq/float64(n) - mean*mean
	return mean, variance
}

func build(t *testing.T, values []float64, cfg Config, model gossip.Model, seed uint64) (*gossip.Engine, *env.Uniform) {
	t.Helper()
	e := env.NewUniform(len(values))
	agents := make([]gossip.Agent, len(values))
	for i, v := range values {
		agents[i] = New(gossip.NodeID(i), v, cfg)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: model, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return engine, e
}

func TestNewPanicsOnBadLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for λ=2")
		}
	}()
	New(0, 1, Config{Lambda: 2})
}

func TestInitialState(t *testing.T) {
	n := New(3, 4, Config{})
	if n.ID() != 3 {
		t.Errorf("ID = %d", n.ID())
	}
	if m := n.Mass(); m.W != 1 || m.V != 4 || m.Q != 16 {
		t.Errorf("initial mass = %+v, want {1 4 16}", m)
	}
	if mean, ok := n.Mean(); !ok || mean != 4 {
		t.Errorf("Mean = %v, %v", mean, ok)
	}
	if v, ok := n.Variance(); !ok || v != 0 {
		t.Errorf("single-host variance = %v, %v, want 0", v, ok)
	}
}

// Conservation of all three mass components under push rounds with a
// static node set, for arbitrary values and λ.
func TestConservation(t *testing.T) {
	prop := func(raw []int8, lambdaRaw uint8, seed uint64) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		lambda := float64(lambdaRaw) / 255
		values := make([]float64, len(raw))
		var wantV, wantQ float64
		for i, r := range raw {
			values[i] = float64(r)
			wantV += float64(r)
			wantQ += float64(r) * float64(r)
		}
		e := env.NewUniform(len(values))
		agents := make([]gossip.Agent, len(values))
		for i, v := range values {
			agents[i] = New(gossip.NodeID(i), v, Config{Lambda: lambda})
		}
		engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.Push, Seed: seed})
		if err != nil {
			return false
		}
		engine.Run(6)
		var gotW, gotV, gotQ float64
		for _, a := range engine.Agents() {
			m := a.(*Node).Mass()
			gotW += m.W
			gotV += m.V
			gotQ += m.Q
		}
		wantW := float64(len(values))
		tol := func(want float64) float64 { return 1e-6 * (1 + math.Abs(want)) }
		return math.Abs(gotW-wantW) < tol(wantW) &&
			math.Abs(gotV-wantV) < tol(wantV) &&
			math.Abs(gotQ-wantQ) < tol(wantQ)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestVarianceConverges(t *testing.T) {
	const n = 600
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 100)
	}
	wantMean, wantVar := trueMoments(values, nil)
	engine, _ := build(t, values, Config{Lambda: 0.01, PushPull: true}, gossip.PushPull, 1)
	engine.Run(40)
	for id, a := range engine.Agents() {
		node := a.(*Node)
		mean, _ := node.Mean()
		variance, _ := node.Variance()
		if math.Abs(mean-wantMean) > 0.05*wantMean {
			t.Fatalf("host %d mean %v, want %v", id, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar {
			t.Fatalf("host %d variance %v, want %v", id, variance, wantVar)
		}
		sd, _ := node.StdDev()
		if math.Abs(sd-math.Sqrt(wantVar)) > 0.05*math.Sqrt(wantVar) {
			t.Fatalf("host %d stddev %v, want %v", id, sd, math.Sqrt(wantVar))
		}
	}
}

// After a correlated failure the variance estimate re-converges to the
// survivors' variance — the dynamic behaviour the reversion buys.
func TestVarianceRecoversAfterFailure(t *testing.T) {
	const n = 800
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 100)
	}
	engine, e := build(t, values, Config{Lambda: 0.1, PushPull: true}, gossip.PushPull, 2)
	engine.Run(20)
	// Fail hosts with values >= 50: survivors hold 0..49.
	for i, v := range values {
		if v >= 50 {
			e.Population.Fail(gossip.NodeID(i))
		}
	}
	_, wantVar := trueMoments(values, func(i int) bool { return values[i] < 50 })
	engine.Run(60)
	var meanErr float64
	cnt := 0
	for id, a := range engine.Agents() {
		if !e.Population.Alive(gossip.NodeID(id)) {
			continue
		}
		variance, ok := a.(*Node).Variance()
		if !ok {
			continue
		}
		meanErr += math.Abs(variance - wantVar)
		cnt++
	}
	meanErr /= float64(cnt)
	// Variance errors are quadratic in value scale; require recovery to
	// within ~20% of the survivors' true variance (static would sit at
	// the old variance ≈ 833 vs new ≈ 208, a 4× error).
	if meanErr > 0.25*wantVar {
		t.Errorf("post-failure variance error %v, want < %v", meanErr, 0.25*wantVar)
	}
}

func TestUniformValuesVariance(t *testing.T) {
	// U[0,100) has variance 100²/12 ≈ 833; sanity-check the estimator
	// against an analytic target rather than the empirical one.
	const n = 500
	rngVals := make([]float64, n)
	for i := range rngVals {
		rngVals[i] = float64((i*37)%100) + 0.5
	}
	engine, _ := build(t, rngVals, Config{Lambda: 0, PushPull: true}, gossip.PushPull, 3)
	engine.Run(40)
	sd, _ := engine.Agents()[0].(*Node).StdDev()
	if sd < 20 || sd > 40 {
		t.Errorf("stddev estimate %v, want ≈ 28.9", sd)
	}
}

func TestIsolatedHostKeepsMass(t *testing.T) {
	n := New(0, 5, Config{Lambda: 0.1})
	for r := 0; r < 5; r++ {
		n.BeginRound(r)
		envs := n.Emit(r, nil, func() (gossip.NodeID, bool) { return 0, false })
		for _, e := range envs {
			n.Receive(e.Payload)
		}
		n.EndRound(r)
	}
	if m := n.Mass(); math.Abs(m.W-1) > 1e-9 || math.Abs(m.V-5) > 1e-9 || math.Abs(m.Q-25) > 1e-9 {
		t.Errorf("isolated mass drifted: %+v", m)
	}
}

func TestVarianceNeverNegative(t *testing.T) {
	prop := func(w, v, q float64) bool {
		n := New(0, 1, Config{})
		n.w = math.Abs(w) + 0.5
		n.v = v
		n.q = q
		variance, ok := n.Variance()
		return ok && variance >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
