package multi

import (
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

func build(t *testing.T, n int, mk func(i int) map[string]float64, lambda float64, pushPull bool, seed uint64) (*gossip.Engine, *env.Uniform) {
	t.Helper()
	e := env.NewUniform(n)
	model := gossip.Push
	if pushPull {
		model = gossip.PushPull
	}
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = New(gossip.NodeID(i), mk(i),
			sketchreset.Config{Params: sketch.DefaultParams, Identifiers: 1},
			pushsumrevert.Config{Lambda: lambda, PushPull: pushPull},
		)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: model, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return engine, e
}

func TestNewPanicsWithoutAggregates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for empty aggregate set")
		}
	}()
	New(0, nil, sketchreset.Config{Params: sketch.DefaultParams}, pushsumrevert.Config{})
}

func TestNamesSortedAndAccessors(t *testing.T) {
	n := New(3, map[string]float64{"z": 1, "a": 2, "m": 3},
		sketchreset.Config{Params: sketch.DefaultParams},
		pushsumrevert.Config{})
	if n.ID() != 3 {
		t.Errorf("ID = %d", n.ID())
	}
	names := n.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Errorf("Names = %v", names)
	}
	if _, ok := n.Agg("a"); !ok {
		t.Error("Agg(a) missing")
	}
	if _, ok := n.Agg("nope"); ok {
		t.Error("Agg(nope) present")
	}
	if _, ok := n.Average("nope"); ok {
		t.Error("Average(nope) present")
	}
	if n.Count() == nil {
		t.Error("Count nil")
	}
}

// The core contract: several aggregates converge concurrently, sharing
// one sketch.
func TestConcurrentAggregatesConverge(t *testing.T) {
	const n = 800
	mk := func(i int) map[string]float64 {
		return map[string]float64{
			"temp": float64(i % 40),       // avg 19.5
			"load": float64((i * 3) % 10), // avg 4.5
		}
	}
	engine, _ := build(t, n, mk, 0.01, true, 1)
	engine.Run(25)
	node := engine.Agents()[0].(*Node)

	size, ok := node.Size()
	if !ok || math.Abs(size-n) > 0.35*n {
		t.Errorf("size %v, %v; want ≈ %d", size, ok, n)
	}
	if avg, ok := node.Average("temp"); !ok || math.Abs(avg-19.5) > 2 {
		t.Errorf("temp average %v, %v; want ≈ 19.5", avg, ok)
	}
	if avg, ok := node.Average("load"); !ok || math.Abs(avg-4.5) > 1 {
		t.Errorf("load average %v, %v; want ≈ 4.5", avg, ok)
	}
	wantTempSum := 19.5 * n
	if sum, ok := node.Sum("temp"); !ok || math.Abs(sum-wantTempSum) > 0.4*wantTempSum {
		t.Errorf("temp sum %v, %v; want ≈ %v", sum, ok, wantTempSum)
	}
	if _, ok := node.Sum("nope"); ok {
		t.Error("Sum(nope) present")
	}
	if est, ok := node.Estimate(); !ok || est != size {
		t.Errorf("Estimate %v, %v; want the size estimate %v", est, ok, size)
	}
}

func TestPushModeConverges(t *testing.T) {
	const n = 500
	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = New(gossip.NodeID(i), map[string]float64{"v": float64(i % 100)},
			// One-directional push propagates slower than the mutual
			// exchange the paper derives 7+k/4 under (§IV-A: the peer
			// responding "lower[s] the bound on Ni"); push-only needs a
			// correspondingly larger cutoff.
			sketchreset.Config{
				Params: sketch.DefaultParams, Identifiers: 1,
				Cutoff: func(k int) float64 { return 16 + float64(k)/2 },
			},
			pushsumrevert.Config{Lambda: 0.01},
		)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.Push, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(30)
	node := engine.Agents()[0].(*Node)
	if avg, ok := node.Average("v"); !ok || math.Abs(avg-49.5) > 5 {
		t.Errorf("push-mode average %v, %v; want ≈ 49.5", avg, ok)
	}
	if size, ok := node.Size(); !ok || math.Abs(size-n) > 0.4*n {
		t.Errorf("push-mode size %v, %v; want ≈ %d", size, ok, n)
	}
}

// Both halves self-heal after correlated departures: the sum tracks
// the survivors.
func TestRecoversAfterFailure(t *testing.T) {
	const n = 800
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 10)
	}
	mk := func(i int) map[string]float64 { return map[string]float64{"v": values[i]} }
	engine, e := build(t, n, mk, 0.1, true, 3)
	engine.Run(20)
	var want float64
	for i, v := range values {
		if v >= 5 {
			e.Population.Fail(gossip.NodeID(i))
		} else {
			want += v
		}
	}
	engine.Run(40)
	var mean float64
	cnt := 0
	for id, a := range engine.Agents() {
		if !e.Population.Alive(gossip.NodeID(id)) {
			continue
		}
		if sum, ok := a.(*Node).Sum("v"); ok {
			mean += sum
			cnt++
		}
	}
	mean /= float64(cnt)
	if math.Abs(mean-want) > 0.5*want {
		t.Errorf("post-failure sum %v, want ≈ %v", mean, want)
	}
}

// Marginal cost check: the shared sketch means adding aggregates does
// not multiply the message count.
func TestMessageCountIndependentOfAggregates(t *testing.T) {
	const n = 200
	count := func(k int) int64 {
		mk := func(i int) map[string]float64 {
			m := make(map[string]float64, k)
			for j := 0; j < k; j++ {
				m[string(rune('a'+j))] = float64(i)
			}
			return m
		}
		engine, _ := build(t, n, mk, 0.01, false, 4)
		engine.Run(5)
		return engine.Messages()
	}
	one := count(1)
	five := count(5)
	// The bundle per (destination) is one envelope; five aggregates
	// ride in the same envelopes, so message counts stay equal.
	if five != one {
		t.Errorf("message count grew with aggregates: %d (1 agg) vs %d (5 aggs)", one, five)
	}
}
