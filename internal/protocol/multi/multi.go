// Package multi implements the full Invert-Average deployment of the
// paper's Figure 7: one Count-Sketch-Reset instance amortized over any
// number of named Push-Sum-Revert aggregates.
//
//  1. Compute netsize_t := Count-Sketch-Reset()
//  2. For each desired value v, compute A_v,t := Push-Sum-Revert(v)
//  3. Estimate_v,t := A_v,t × netsize_t
//
// This is the arrangement §IV-B argues for: the counter matrix is by
// far the most expensive payload (see internal/wire and ablation A9),
// and its cost is paid once no matter how many sums ride on top. Each
// additional aggregate costs two floats per message.
//
// Every named aggregate yields both a running average (the raw
// Push-Sum-Revert estimate) and a running sum (average × size).
//
// Two deployment extensions support a query gateway (internal/gateway):
// NewObserver builds a host that owns no sketch identifiers and whose
// aggregates carry zero weight, so it converges to the population's
// answers without perturbing them; Register and SetResolver let new
// named aggregates appear at runtime and spread epidemically — a host
// that receives mass for a name it has never seen asks its resolver
// for a local value and joins that aggregate on the spot.
package multi

import (
	"fmt"
	"slices"
	"sort"

	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/xrand"
)

// Bundle routes sub-protocol messages: the sketch matrix and one mass
// per named aggregate. It is the package's gossiped payload type; the
// live transport codec encodes it on the wire (kindMultiBundle).
type Bundle struct {
	// Count is the sketchreset payload, or nil when the sketch does
	// not ride this envelope.
	Count any
	// Masses holds one pushsumrevert payload per aggregate name.
	Masses map[string]any
}

// outBundle is one destination's accumulated payload in EmitAppend's
// reusable scratch.
type outBundle struct {
	to gossip.NodeID
	p  Bundle
}

// Node runs one Count-Sketch-Reset host plus one Push-Sum-Revert host
// per named aggregate at the same simulated device.
type Node struct {
	id     gossip.NodeID
	count  *sketchreset.Node
	aggs   map[string]*pushsumrevert.Node
	names  []string // sorted, for deterministic iteration
	avgCfg pushsumrevert.Config

	// observer marks a zero-contribution host: its aggregates carry no
	// mass and unknown incoming names auto-register as observers too.
	observer bool
	// resolver supplies this host's local value when mass arrives for
	// an unregistered aggregate name; nil means unknown names are
	// dropped (non-observer) — the pre-gateway behavior.
	resolver func(name string) (float64, bool)

	// EmitAppend scratch, reused across rounds: sub-protocol emissions
	// and per-destination bundles (maps cleared, not reallocated).
	subBuf  []gossip.Envelope
	bundles []outBundle
}

var (
	_ gossip.Agent         = (*Node)(nil)
	_ gossip.Exchanger     = (*Node)(nil)
	_ gossip.AppendEmitter = (*Node)(nil)
)

// New returns a multi-aggregate host. values maps aggregate names to
// this host's data value for that aggregate; all hosts must register
// the same name set (or rely on SetResolver to converge on it).
func New(id gossip.NodeID, values map[string]float64, countCfg sketchreset.Config, avgCfg pushsumrevert.Config) *Node {
	if len(values) == 0 {
		panic("multi: no aggregates registered")
	}
	if countCfg.Identifiers == 0 {
		countCfg.Identifiers = 1
	}
	n := &Node{
		id:     id,
		count:  sketchreset.New(id, countCfg),
		aggs:   make(map[string]*pushsumrevert.Node, len(values)),
		avgCfg: avgCfg,
	}
	for name, v := range values {
		n.aggs[name] = pushsumrevert.New(id, v, avgCfg)
		n.names = append(n.names, name)
	}
	sort.Strings(n.names)
	return n
}

// NewObserver returns a read-only multi-aggregate host: it owns zero
// sketch identifiers (so it relays the size sketch without counting as
// a member) and each named aggregate is a zero-weight Push-Sum-Revert
// observer. names may be empty — mass arriving for any name the
// observer has not seen auto-registers a zero-weight aggregate, so an
// observer discovers the population's aggregate set by listening.
func NewObserver(id gossip.NodeID, names []string, countCfg sketchreset.Config, avgCfg pushsumrevert.Config) *Node {
	countCfg.Identifiers = 0
	n := &Node{
		id:       id,
		count:    sketchreset.New(id, countCfg),
		aggs:     make(map[string]*pushsumrevert.Node, len(names)),
		avgCfg:   avgCfg,
		observer: true,
	}
	for _, name := range names {
		if _, ok := n.aggs[name]; ok {
			continue
		}
		n.aggs[name] = pushsumrevert.NewObserver(id, avgCfg)
		n.names = append(n.names, name)
	}
	sort.Strings(n.names)
	return n
}

// Observer reports whether this host was built by NewObserver.
func (n *Node) Observer() bool { return n.observer }

// Register adds a named aggregate at runtime and reports whether it
// was new. On a regular host the aggregate starts with this host's
// local value and unit weight; on an observer the value is ignored and
// the aggregate starts empty (zero weight). A host registered
// mid-round simply starts gossiping the name on its next emission;
// Push-Sum-Revert's reversion absorbs the transient mass imbalance, so
// the new aggregate spreads epidemically with no epoch coordination.
func (n *Node) Register(name string, value float64) bool {
	if _, ok := n.aggs[name]; ok {
		return false
	}
	if n.observer {
		n.aggs[name] = pushsumrevert.NewObserver(n.id, n.avgCfg)
	} else {
		n.aggs[name] = pushsumrevert.New(n.id, value, n.avgCfg)
	}
	i, _ := slices.BinarySearch(n.names, name)
	n.names = slices.Insert(n.names, i, name)
	return true
}

// SetResolver installs the callback consulted when mass arrives for an
// unregistered aggregate name. Returning (v, true) registers the name
// with local value v before the mass is delivered; returning false
// drops the mass. Observers never need a resolver — they auto-register
// unknown names as zero-weight aggregates.
func (n *Node) SetResolver(f func(name string) (float64, bool)) { n.resolver = f }

// ID returns the host id.
func (n *Node) ID() gossip.NodeID { return n.id }

// Names returns the registered aggregate names in sorted order.
func (n *Node) Names() []string {
	out := make([]string, len(n.names))
	copy(out, n.names)
	return out
}

// Count exposes the shared Count-Sketch-Reset host.
func (n *Node) Count() *sketchreset.Node { return n.count }

// Agg exposes the Push-Sum-Revert host for one aggregate.
func (n *Node) Agg(name string) (*pushsumrevert.Node, bool) {
	a, ok := n.aggs[name]
	return a, ok
}

// BeginRound implements gossip.Agent.
func (n *Node) BeginRound(round int) {
	n.count.BeginRound(round)
	for _, name := range n.names {
		n.aggs[name].BeginRound(round)
	}
}

// Emit implements gossip.Agent. All sub-protocols address the same
// peer per envelope slot so the combined state travels as one radio
// message; the sketch payload rides with the first aggregate's.
func (n *Node) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	// Pick one peer for the bundle; Push-Sum-Revert's self-share still
	// goes home.
	type bundle struct {
		to     gossip.NodeID
		masses map[string]any
	}
	bundles := make(map[gossip.NodeID]*bundle)
	get := func(to gossip.NodeID) *bundle {
		b, ok := bundles[to]
		if !ok {
			b = &bundle{to: to, masses: make(map[string]any)}
			bundles[to] = b
		}
		return b
	}
	// All aggregates share one peer choice per round: draw it once and
	// serve it to every sub-protocol.
	var chosen gossip.NodeID
	havePeer := false
	sharedPick := func() (gossip.NodeID, bool) {
		if !havePeer {
			chosen, havePeer = pick()
			if !havePeer {
				return 0, false
			}
		}
		return chosen, true
	}
	for _, name := range n.names {
		for _, env := range n.aggs[name].Emit(round, rng, sharedPick) {
			get(env.To).masses[name] = env.Payload
		}
	}
	for _, env := range n.count.Emit(round, rng, sharedPick) {
		// The sketch payload attaches to its destination's bundle.
		get(env.To).masses["\x00sketch"] = env.Payload
	}
	out := make([]gossip.Envelope, 0, len(bundles))
	for to, b := range bundles {
		p := Bundle{Masses: make(map[string]any, len(b.masses))}
		for name, m := range b.masses {
			if name == "\x00sketch" {
				p.Count = m
				continue
			}
			p.Masses[name] = m
		}
		out = append(out, gossip.Envelope{To: to, Payload: p})
	}
	// Deterministic envelope order (map iteration is random).
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	return out
}

// bundleFor returns the reusable bundle accumulating payload parts for
// one destination, creating (or recycling) it on first use. Linear
// search is fine: a round emits to at most a handful of destinations.
func (n *Node) bundleFor(to gossip.NodeID) *Bundle {
	for i := range n.bundles {
		if n.bundles[i].to == to {
			return &n.bundles[i].p
		}
	}
	if len(n.bundles) < cap(n.bundles) {
		n.bundles = n.bundles[:len(n.bundles)+1]
	} else {
		n.bundles = append(n.bundles, outBundle{})
	}
	b := &n.bundles[len(n.bundles)-1]
	b.to = to
	b.p.Count = nil
	if b.p.Masses == nil {
		b.p.Masses = make(map[string]any, len(n.names))
	} else {
		clear(b.p.Masses)
	}
	return &b.p
}

// EmitAppend implements gossip.AppendEmitter: sub-protocols emit
// through their own EmitAppend into a reusable scratch slice, payload
// parts are grouped into per-destination bundles whose maps are
// cleared and reused each round, and one envelope per destination is
// appended in ascending-destination order — amortized zero allocation.
func (n *Node) EmitAppend(dst []gossip.Envelope, round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	var chosen gossip.NodeID
	havePeer := false
	sharedPick := func() (gossip.NodeID, bool) {
		if !havePeer {
			chosen, havePeer = pick()
			if !havePeer {
				return 0, false
			}
		}
		return chosen, true
	}
	n.bundles = n.bundles[:0]
	sub := n.subBuf[:0]
	start := 0
	for _, name := range n.names {
		sub = n.aggs[name].EmitAppend(sub, round, rng, sharedPick)
		for _, env := range sub[start:] {
			n.bundleFor(env.To).Masses[name] = env.Payload
		}
		start = len(sub)
	}
	sub = n.count.EmitAppend(sub, round, rng, sharedPick)
	for _, env := range sub[start:] {
		n.bundleFor(env.To).Count = env.Payload
	}
	n.subBuf = sub
	// Deterministic envelope order; pointers are taken only after the
	// bundle slice has stopped moving (sorting swaps values in place).
	slices.SortFunc(n.bundles, func(a, b outBundle) int {
		return int(a.to) - int(b.to)
	})
	for i := range n.bundles {
		dst = append(dst, gossip.Envelope{To: n.bundles[i].to, Payload: &n.bundles[i].p})
	}
	return dst
}

// Receive implements gossip.Agent. Both the boxed Bundle of Emit and
// the scratch-backed *Bundle of EmitAppend are accepted. Mass for an
// unregistered name auto-registers it on an observer, consults the
// resolver on a regular host, and is otherwise dropped.
func (n *Node) Receive(p any) {
	var pl Bundle
	switch v := p.(type) {
	case *Bundle:
		pl = *v
	case Bundle:
		pl = v
	default:
		panic(fmt.Sprintf("multi: unexpected payload %T", p))
	}
	if pl.Count != nil {
		n.count.Receive(pl.Count)
	}
	for name, m := range pl.Masses {
		agg, ok := n.aggs[name]
		if !ok {
			if n.observer {
				n.Register(name, 0)
			} else if n.resolver != nil {
				v, have := n.resolver(name)
				if !have {
					continue
				}
				n.Register(name, v)
			} else {
				continue
			}
			agg = n.aggs[name]
		}
		agg.Receive(m)
	}
}

// EndRound implements gossip.Agent.
func (n *Node) EndRound(round int) {
	n.count.EndRound(round)
	for _, name := range n.names {
		n.aggs[name].EndRound(round)
	}
}

// Exchange implements gossip.Exchanger: all sub-protocols exchange
// with the same peer.
func (n *Node) Exchange(peer gossip.Exchanger) {
	p := peer.(*Node)
	n.count.Exchange(p.count)
	for _, name := range n.names {
		if other, ok := p.aggs[name]; ok {
			n.aggs[name].Exchange(other)
		}
	}
}

// Size returns the host's running network-size estimate.
func (n *Node) Size() (float64, bool) { return n.count.Estimate() }

// Average returns the host's running average estimate for one named
// aggregate.
func (n *Node) Average(name string) (float64, bool) {
	agg, ok := n.aggs[name]
	if !ok {
		return 0, false
	}
	return agg.Estimate()
}

// Sum returns the host's running sum estimate for one named aggregate:
// average × network size (Figure 7 step 3).
func (n *Node) Sum(name string) (float64, bool) {
	avg, ok1 := n.Average(name)
	size, ok2 := n.Size()
	if !ok1 || !ok2 {
		return 0, false
	}
	return avg * size, true
}

// Estimate implements gossip.Agent, reporting the network-size
// estimate (the only aggregate every Node shares); named aggregates
// are read through Average and Sum.
func (n *Node) Estimate() (float64, bool) { return n.Size() }
