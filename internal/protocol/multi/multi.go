// Package multi implements the full Invert-Average deployment of the
// paper's Figure 7: one Count-Sketch-Reset instance amortized over any
// number of named Push-Sum-Revert aggregates.
//
//  1. Compute netsize_t := Count-Sketch-Reset()
//  2. For each desired value v, compute A_v,t := Push-Sum-Revert(v)
//  3. Estimate_v,t := A_v,t × netsize_t
//
// This is the arrangement §IV-B argues for: the counter matrix is by
// far the most expensive payload (see internal/wire and ablation A9),
// and its cost is paid once no matter how many sums ride on top. Each
// additional aggregate costs two floats per message.
//
// Every named aggregate yields both a running average (the raw
// Push-Sum-Revert estimate) and a running sum (average × size).
package multi

import (
	"fmt"
	"slices"
	"sort"

	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/xrand"
)

// payload routes sub-protocol messages: the sketch matrix and one mass
// per named aggregate.
type payload struct {
	count  any            // sketchreset payload, or nil
	masses map[string]any // pushsumrevert payloads by aggregate name
}

// outBundle is one destination's accumulated payload in EmitAppend's
// reusable scratch.
type outBundle struct {
	to gossip.NodeID
	p  payload
}

// Node runs one Count-Sketch-Reset host plus one Push-Sum-Revert host
// per named aggregate at the same simulated device.
type Node struct {
	id    gossip.NodeID
	count *sketchreset.Node
	aggs  map[string]*pushsumrevert.Node
	names []string // sorted, for deterministic iteration

	// EmitAppend scratch, reused across rounds: sub-protocol emissions
	// and per-destination bundles (maps cleared, not reallocated).
	subBuf  []gossip.Envelope
	bundles []outBundle
}

var (
	_ gossip.Agent         = (*Node)(nil)
	_ gossip.Exchanger     = (*Node)(nil)
	_ gossip.AppendEmitter = (*Node)(nil)
)

// New returns a multi-aggregate host. values maps aggregate names to
// this host's data value for that aggregate; all hosts must register
// the same name set.
func New(id gossip.NodeID, values map[string]float64, countCfg sketchreset.Config, avgCfg pushsumrevert.Config) *Node {
	if len(values) == 0 {
		panic("multi: no aggregates registered")
	}
	if countCfg.Identifiers == 0 {
		countCfg.Identifiers = 1
	}
	n := &Node{
		id:    id,
		count: sketchreset.New(id, countCfg),
		aggs:  make(map[string]*pushsumrevert.Node, len(values)),
	}
	for name, v := range values {
		n.aggs[name] = pushsumrevert.New(id, v, avgCfg)
		n.names = append(n.names, name)
	}
	sort.Strings(n.names)
	return n
}

// ID returns the host id.
func (n *Node) ID() gossip.NodeID { return n.id }

// Names returns the registered aggregate names in sorted order.
func (n *Node) Names() []string {
	out := make([]string, len(n.names))
	copy(out, n.names)
	return out
}

// Count exposes the shared Count-Sketch-Reset host.
func (n *Node) Count() *sketchreset.Node { return n.count }

// Agg exposes the Push-Sum-Revert host for one aggregate.
func (n *Node) Agg(name string) (*pushsumrevert.Node, bool) {
	a, ok := n.aggs[name]
	return a, ok
}

// BeginRound implements gossip.Agent.
func (n *Node) BeginRound(round int) {
	n.count.BeginRound(round)
	for _, name := range n.names {
		n.aggs[name].BeginRound(round)
	}
}

// Emit implements gossip.Agent. All sub-protocols address the same
// peer per envelope slot so the combined state travels as one radio
// message; the sketch payload rides with the first aggregate's.
func (n *Node) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	// Pick one peer for the bundle; Push-Sum-Revert's self-share still
	// goes home.
	type bundle struct {
		to     gossip.NodeID
		masses map[string]any
	}
	bundles := make(map[gossip.NodeID]*bundle)
	get := func(to gossip.NodeID) *bundle {
		b, ok := bundles[to]
		if !ok {
			b = &bundle{to: to, masses: make(map[string]any)}
			bundles[to] = b
		}
		return b
	}
	// All aggregates share one peer choice per round: draw it once and
	// serve it to every sub-protocol.
	var chosen gossip.NodeID
	havePeer := false
	sharedPick := func() (gossip.NodeID, bool) {
		if !havePeer {
			chosen, havePeer = pick()
			if !havePeer {
				return 0, false
			}
		}
		return chosen, true
	}
	for _, name := range n.names {
		for _, env := range n.aggs[name].Emit(round, rng, sharedPick) {
			get(env.To).masses[name] = env.Payload
		}
	}
	for _, env := range n.count.Emit(round, rng, sharedPick) {
		// The sketch payload attaches to its destination's bundle.
		get(env.To).masses["\x00sketch"] = env.Payload
	}
	out := make([]gossip.Envelope, 0, len(bundles))
	for to, b := range bundles {
		p := payload{masses: make(map[string]any, len(b.masses))}
		for name, m := range b.masses {
			if name == "\x00sketch" {
				p.count = m
				continue
			}
			p.masses[name] = m
		}
		out = append(out, gossip.Envelope{To: to, Payload: p})
	}
	// Deterministic envelope order (map iteration is random).
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	return out
}

// bundleFor returns the reusable bundle accumulating payload parts for
// one destination, creating (or recycling) it on first use. Linear
// search is fine: a round emits to at most a handful of destinations.
func (n *Node) bundleFor(to gossip.NodeID) *payload {
	for i := range n.bundles {
		if n.bundles[i].to == to {
			return &n.bundles[i].p
		}
	}
	if len(n.bundles) < cap(n.bundles) {
		n.bundles = n.bundles[:len(n.bundles)+1]
	} else {
		n.bundles = append(n.bundles, outBundle{})
	}
	b := &n.bundles[len(n.bundles)-1]
	b.to = to
	b.p.count = nil
	if b.p.masses == nil {
		b.p.masses = make(map[string]any, len(n.names))
	} else {
		clear(b.p.masses)
	}
	return &b.p
}

// EmitAppend implements gossip.AppendEmitter: sub-protocols emit
// through their own EmitAppend into a reusable scratch slice, payload
// parts are grouped into per-destination bundles whose maps are
// cleared and reused each round, and one envelope per destination is
// appended in ascending-destination order — amortized zero allocation.
func (n *Node) EmitAppend(dst []gossip.Envelope, round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	var chosen gossip.NodeID
	havePeer := false
	sharedPick := func() (gossip.NodeID, bool) {
		if !havePeer {
			chosen, havePeer = pick()
			if !havePeer {
				return 0, false
			}
		}
		return chosen, true
	}
	n.bundles = n.bundles[:0]
	sub := n.subBuf[:0]
	start := 0
	for _, name := range n.names {
		sub = n.aggs[name].EmitAppend(sub, round, rng, sharedPick)
		for _, env := range sub[start:] {
			n.bundleFor(env.To).masses[name] = env.Payload
		}
		start = len(sub)
	}
	sub = n.count.EmitAppend(sub, round, rng, sharedPick)
	for _, env := range sub[start:] {
		n.bundleFor(env.To).count = env.Payload
	}
	n.subBuf = sub
	// Deterministic envelope order; pointers are taken only after the
	// bundle slice has stopped moving (sorting swaps values in place).
	slices.SortFunc(n.bundles, func(a, b outBundle) int {
		return int(a.to) - int(b.to)
	})
	for i := range n.bundles {
		dst = append(dst, gossip.Envelope{To: n.bundles[i].to, Payload: &n.bundles[i].p})
	}
	return dst
}

// Receive implements gossip.Agent. Both the boxed payload of Emit and
// the scratch-backed *payload of EmitAppend are accepted.
func (n *Node) Receive(p any) {
	var pl payload
	switch v := p.(type) {
	case *payload:
		pl = *v
	case payload:
		pl = v
	default:
		panic(fmt.Sprintf("multi: unexpected payload %T", p))
	}
	if pl.count != nil {
		n.count.Receive(pl.count)
	}
	for name, m := range pl.masses {
		if agg, ok := n.aggs[name]; ok {
			agg.Receive(m)
		}
	}
}

// EndRound implements gossip.Agent.
func (n *Node) EndRound(round int) {
	n.count.EndRound(round)
	for _, name := range n.names {
		n.aggs[name].EndRound(round)
	}
}

// Exchange implements gossip.Exchanger: all sub-protocols exchange
// with the same peer.
func (n *Node) Exchange(peer gossip.Exchanger) {
	p := peer.(*Node)
	n.count.Exchange(p.count)
	for _, name := range n.names {
		if other, ok := p.aggs[name]; ok {
			n.aggs[name].Exchange(other)
		}
	}
}

// Size returns the host's running network-size estimate.
func (n *Node) Size() (float64, bool) { return n.count.Estimate() }

// Average returns the host's running average estimate for one named
// aggregate.
func (n *Node) Average(name string) (float64, bool) {
	agg, ok := n.aggs[name]
	if !ok {
		return 0, false
	}
	return agg.Estimate()
}

// Sum returns the host's running sum estimate for one named aggregate:
// average × network size (Figure 7 step 3).
func (n *Node) Sum(name string) (float64, bool) {
	avg, ok1 := n.Average(name)
	size, ok2 := n.Size()
	if !ok1 || !ok2 {
		return 0, false
	}
	return avg * size, true
}

// Estimate implements gossip.Agent, reporting the network-size
// estimate (the only aggregate every Node shares); named aggregates
// are read through Average and Sum.
func (n *Node) Estimate() (float64, bool) { return n.Size() }
