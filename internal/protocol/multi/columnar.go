package multi

import (
	"fmt"
	"sort"

	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
)

// sketchBit marks, in the From field's high bits, the bundle that
// carries the Count-Sketch-Reset matrix — the columnar plane's version
// of the classic payload's count slot. The engine only reads ColMsg.To,
// so From's upper bits are free for protocol routing.
const sketchBit gossip.NodeID = 1 << 30

// colAgg is one named aggregate's column set: the Push-Sum-Revert mass
// plane laid out population-wide, with outW/outV holding the mass each
// host's bundles carry this round (every bundle a host emits carries
// the same per-aggregate mass, so one slot per host suffices).
type colAgg struct {
	name       string
	w, v       []float64
	w0, mv0    []float64
	inW, inV   []float64
	outW, outV []float64
	est        []float64
	hasEst     []bool
}

// Columnar is the struct-of-arrays form of the multi-aggregate
// deployment: one columnar Count-Sketch-Reset population plus one mass
// column set per named aggregate, gossiped as per-destination bundles
// exactly like the classic Node — one ColMsg per bundle, masses read
// From-indexed out columns, the sketch rides the peer bundle
// (gossip.ColumnarAgent + gossip.ColExchanger). All aggregates share
// one peer draw per host per round (the classic sharedPick), so the
// PRNG stream, bundle count, and delivery folds are byte-identical to
// a population of *Node agents.
//
// FullTransfer averaging configurations are rejected: bundling
// collapses the N independent parcels (the classic path's map-keyed
// bundles silently drop N-1 of them), so neither path supports the
// combination meaningfully.
type Columnar struct {
	avgCfg pushsumrevert.Config
	count  *sketchreset.Columnar
	aggs   []colAgg // sorted by name, the classic iteration order
}

var _ gossip.ColExchanger = (*Columnar)(nil)

// NewColumnar returns the columnar population. values maps aggregate
// names to per-host value columns; all columns must share one length.
func NewColumnar(values map[string][]float64, countCfg sketchreset.Config, avgCfg pushsumrevert.Config) *Columnar {
	if len(values) == 0 {
		panic("multi: no aggregates registered")
	}
	if err := avgCfg.Validate(); err != nil {
		panic(err)
	}
	if avgCfg.FullTransfer {
		panic("multi: FullTransfer averaging has no columnar form (bundles collapse the parcels)")
	}
	if countCfg.Identifiers == 0 {
		countCfg.Identifiers = 1
	}
	names := make([]string, 0, len(values))
	for name := range values {
		names = append(names, name)
	}
	sort.Strings(names)
	n := len(values[names[0]])
	w0 := avgCfg.Weight
	if w0 == 0 {
		w0 = 1
	}
	c := &Columnar{
		avgCfg: avgCfg,
		count:  sketchreset.NewColumnar(n, countCfg),
		aggs:   make([]colAgg, len(names)),
	}
	for ai, name := range names {
		vs := values[name]
		if len(vs) != n {
			panic(fmt.Sprintf("multi: aggregate %q has %d values, want %d", name, len(vs), n))
		}
		a := colAgg{
			name:   name,
			w:      make([]float64, n),
			v:      make([]float64, n),
			w0:     make([]float64, n),
			mv0:    make([]float64, n),
			inW:    make([]float64, n),
			inV:    make([]float64, n),
			outW:   make([]float64, n),
			outV:   make([]float64, n),
			est:    make([]float64, n),
			hasEst: make([]bool, n),
		}
		for i, v0 := range vs {
			a.w0[i] = w0
			a.mv0[i] = w0 * v0
			a.w[i] = w0
			a.v[i] = w0 * v0
			a.est[i] = v0
			a.hasEst[i] = true
		}
		c.aggs[ai] = a
	}
	return c
}

// Len implements gossip.ColumnarAgent.
func (c *Columnar) Len() int { return c.count.Len() }

// Names returns the registered aggregate names in sorted order.
func (c *Columnar) Names() []string {
	out := make([]string, len(c.aggs))
	for i := range c.aggs {
		out[i] = c.aggs[i].name
	}
	return out
}

// Count exposes the shared columnar Count-Sketch-Reset population.
func (c *Columnar) Count() *sketchreset.Columnar { return c.count }

// BeginRange implements gossip.ColumnarAgent.
func (c *Columnar) BeginRange(rc *gossip.ColRound, lo, hi int) {
	c.count.BeginRange(rc, lo, hi)
	alive := rc.Alive
	for ai := range c.aggs {
		a := &c.aggs[ai]
		for i := lo; i < hi; i++ {
			if alive[i] {
				a.inW[i] = 0
				a.inV[i] = 0
			}
		}
	}
}

// EmitRange implements gossip.ColumnarAgent: one shared peer draw per
// host, every aggregate's mass written to its out columns, then the
// bundles appended in ascending-destination order — exactly the
// classic EmitAppend's sharedPick + sorted bundles.
func (c *Columnar) EmitRange(rc *gossip.ColRound, lo, hi int) {
	λ := c.avgCfg.Lambda
	alive := rc.Alive
	out := rc.Out
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		id := gossip.NodeID(i)
		peer, ok := rc.Pick(id)
		for ai := range c.aggs {
			a := &c.aggs[ai]
			var w, v float64
			switch {
			case !ok:
				// Isolated host: the whole mass returns home (the
				// classic sub-protocol's no-peer emission).
				if c.avgCfg.Adaptive {
					w, v = a.w[i], a.v[i]
				} else {
					w = (1-λ)*a.w[i] + λ*a.w0[i]
					v = (1-λ)*a.v[i] + λ*a.mv0[i]
				}
			case c.avgCfg.Adaptive:
				w, v = a.w[i]/2, a.v[i]/2
			default:
				w = ((1-λ)*a.w[i] + λ*a.w0[i]) / 2
				v = ((1-λ)*a.v[i] + λ*a.mv0[i]) / 2
			}
			a.outW[i] = w
			a.outV[i] = v
		}
		if !ok {
			out = append(out, gossip.ColMsg{To: id, From: id})
			continue
		}
		c.count.Snapshot(id)
		// Two bundles, ascending destination (the classic sort); the
		// sketch rides the peer bundle.
		if peer < id {
			out = append(out,
				gossip.ColMsg{To: peer, From: id | sketchBit},
				gossip.ColMsg{To: id, From: id},
			)
		} else {
			out = append(out,
				gossip.ColMsg{To: id, From: id},
				gossip.ColMsg{To: peer, From: id | sketchBit},
			)
		}
	}
	rc.Out = out
}

// Deliver implements gossip.ColumnarAgent: unfold each bundle — every
// aggregate's mass from the emitter's out columns, plus the sketch
// min-merge when the bundle carries it.
func (c *Columnar) Deliver(rc *gossip.ColRound, msgs []gossip.ColMsg) {
	λ := c.avgCfg.Lambda
	adaptive := c.avgCfg.Adaptive
	for _, m := range msgs {
		to := m.To
		from := m.From &^ sketchBit
		if m.From&sketchBit != 0 {
			c.count.DeliverFrom(to, from)
		}
		for ai := range c.aggs {
			a := &c.aggs[ai]
			if adaptive {
				a.inW[to] += (1-λ)*a.outW[from] + (λ/2)*a.w0[to]
				a.inV[to] += (1-λ)*a.outV[from] + (λ/2)*a.mv0[to]
			} else {
				a.inW[to] += a.outW[from]
				a.inV[to] += a.outV[from]
			}
		}
	}
}

// EndRange implements gossip.ColumnarAgent.
func (c *Columnar) EndRange(rc *gossip.ColRound, lo, hi int) {
	c.count.EndRange(rc, lo, hi)
	alive := rc.Alive
	λ := c.avgCfg.Lambda
	for ai := range c.aggs {
		a := &c.aggs[ai]
		if c.avgCfg.PushPull {
			// Reversion decay once per round on the exchanged mass
			// (pushsumrevert.Node.endRoundPull).
			for i := lo; i < hi; i++ {
				if !alive[i] {
					continue
				}
				a.w[i] = λ*a.w0[i] + (1-λ)*a.w[i]
				a.v[i] = λ*a.mv0[i] + (1-λ)*a.v[i]
				a.refreshEstimate(i)
			}
			continue
		}
		for i := lo; i < hi; i++ {
			if !alive[i] {
				continue
			}
			a.w[i] = a.inW[i]
			a.v[i] = a.inV[i]
			a.refreshEstimate(i)
		}
	}
}

// ExchangePairs implements gossip.ColExchanger: the sketch and every
// aggregate exchange over the same pairs (sub-states are disjoint, so
// batch-per-sub equals the classic per-pair interleaving).
func (c *Columnar) ExchangePairs(rc *gossip.ColRound, pairs []gossip.Pair) {
	c.count.ExchangePairs(rc, pairs)
	for ai := range c.aggs {
		a := &c.aggs[ai]
		for _, pr := range pairs {
			x, y := pr.A, pr.B
			mw := (a.w[x] + a.w[y]) / 2
			mv := (a.v[x] + a.v[y]) / 2
			a.w[x], a.w[y] = mw, mw
			a.v[x], a.v[y] = mv, mv
		}
	}
}

func (a *colAgg) refreshEstimate(i int) {
	if a.w[i] > 1e-12 {
		a.est[i] = a.v[i] / a.w[i]
		a.hasEst[i] = true
	}
}

// Size returns host id's running network-size estimate.
func (c *Columnar) Size(id gossip.NodeID) (float64, bool) { return c.count.Estimate(id) }

// Average returns host id's running average estimate for one named
// aggregate.
func (c *Columnar) Average(name string, id gossip.NodeID) (float64, bool) {
	for ai := range c.aggs {
		if c.aggs[ai].name == name {
			return c.aggs[ai].est[id], c.aggs[ai].hasEst[id]
		}
	}
	return 0, false
}

// Sum returns host id's running sum estimate for one named aggregate:
// average × network size.
func (c *Columnar) Sum(name string, id gossip.NodeID) (float64, bool) {
	avg, ok1 := c.Average(name, id)
	size, ok2 := c.Size(id)
	if !ok1 || !ok2 {
		return 0, false
	}
	return avg * size, true
}

// Estimate implements gossip.ColumnarAgent, reporting the network-size
// estimate like Node.Estimate.
func (c *Columnar) Estimate(id gossip.NodeID) (float64, bool) { return c.Size(id) }
