package multi

import (
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

// buildWithObserver wires n regular hosts plus one observer at id n
// into a classic round engine.
func buildWithObserver(t *testing.T, n int, mk func(i int) map[string]float64, lambda float64, observerNames []string, seed uint64) (*gossip.Engine, *Node) {
	t.Helper()
	e := env.NewUniform(n + 1)
	agents := make([]gossip.Agent, n+1)
	countCfg := sketchreset.Config{Params: sketch.DefaultParams, Identifiers: 1}
	avgCfg := pushsumrevert.Config{Lambda: lambda}
	for i := 0; i < n; i++ {
		agents[i] = New(gossip.NodeID(i), mk(i), countCfg, avgCfg)
	}
	obs := NewObserver(gossip.NodeID(n), observerNames, countCfg, avgCfg)
	agents[n] = obs
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.Push, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return engine, obs
}

func TestObserverConvergesWithoutBias(t *testing.T) {
	const n = 64
	mk := func(i int) map[string]float64 {
		return map[string]float64{"load": float64(i % 10), "temp": 20 + float64(i%5)}
	}
	engine, obs := buildWithObserver(t, n, mk, 0.05, []string{"load", "temp"}, 7)
	if !obs.Observer() {
		t.Fatal("Observer() = false")
	}
	if _, ok := obs.Average("load"); ok {
		t.Fatal("observer reported an estimate before any gossip")
	}
	for r := 0; r < 90; r++ {
		engine.Step()
	}
	// A single observer snapshot fluctuates (it holds little mass, so
	// its instantaneous v/w ratio averages over few parcels); sample a
	// trailing window like the gateway's smoothed reads do.
	samples := map[string]float64{}
	const window = 30
	for r := 0; r < window; r++ {
		engine.Step()
		for _, name := range []string{"load", "temp"} {
			got, ok := obs.Average(name)
			if !ok {
				t.Fatalf("observer has no estimate for %q after %d rounds", name, 90+r)
			}
			samples[name] += got / window
		}
	}
	var truthLoad, truthTemp float64
	for i := 0; i < n; i++ {
		truthLoad += float64(i%10) / n
		truthTemp += (20 + float64(i%5)) / n
	}
	for name, truth := range map[string]float64{"load": truthLoad, "temp": truthTemp} {
		if got := samples[name]; math.Abs(got-truth) > 0.08*math.Abs(truth) {
			t.Errorf("observer %s = %v (window mean), truth %v", name, got, truth)
		}
	}
	// The observer owns no sketch identifiers; its size estimate must
	// track what the population itself reports (the sketch's absolute
	// bias at small n is a sketch property, not an observer artifact).
	size, ok := obs.Size()
	if !ok {
		t.Fatal("observer has no size estimate")
	}
	host := engine.Agent(0).(*Node)
	ref, _ := host.Size()
	if math.Abs(size-ref) > 0.35*ref {
		t.Errorf("observer size = %v, population reports %v", size, ref)
	}
}

func TestObserverAutoRegistersUnknownNames(t *testing.T) {
	obs := NewObserver(9, nil, sketchreset.Config{Params: sketch.DefaultParams}, pushsumrevert.Config{})
	if got := obs.Names(); len(got) != 0 {
		t.Fatalf("fresh observer Names = %v", got)
	}
	obs.BeginRound(0)
	obs.Receive(Bundle{Masses: map[string]any{"cpu": pushsumrevert.Mass{W: 0.5, V: 1.5}}})
	obs.EndRound(0)
	if got := obs.Names(); len(got) != 1 || got[0] != "cpu" {
		t.Fatalf("Names after unknown mass = %v", got)
	}
	avg, ok := obs.Average("cpu")
	if !ok || math.Abs(avg-3) > 1e-9 {
		t.Errorf("Average(cpu) = %v, %v; want 3 (= 1.5/0.5)", avg, ok)
	}
}

func TestResolverRegistersOnRegularHost(t *testing.T) {
	h := New(1, map[string]float64{"seed": 1},
		sketchreset.Config{Params: sketch.DefaultParams},
		pushsumrevert.Config{Lambda: 0.1})
	resolved := 0
	h.SetResolver(func(name string) (float64, bool) {
		resolved++
		if name == "mem" {
			return 42, true
		}
		return 0, false
	})
	h.BeginRound(0)
	h.Receive(Bundle{Masses: map[string]any{
		"mem":    pushsumrevert.Mass{W: 0.25, V: 0.25 * 10},
		"secret": pushsumrevert.Mass{W: 1, V: 1},
	}})
	h.EndRound(0)
	if resolved != 2 {
		t.Errorf("resolver consulted %d times, want 2", resolved)
	}
	names := h.Names()
	if len(names) != 2 || names[0] != "mem" || names[1] != "seed" {
		t.Fatalf("Names = %v, want [mem seed]", names)
	}
	agg, _ := h.Agg("mem")
	if agg.Value() != 42 {
		t.Errorf("resolved local value = %v, want 42", agg.Value())
	}
	if _, ok := h.Agg("secret"); ok {
		t.Error("name the resolver refused was registered anyway")
	}
}

func TestRegisterIdempotentAndSorted(t *testing.T) {
	h := New(1, map[string]float64{"m": 1},
		sketchreset.Config{Params: sketch.DefaultParams},
		pushsumrevert.Config{})
	if !h.Register("a", 2) || !h.Register("z", 3) {
		t.Fatal("Register of new names returned false")
	}
	if h.Register("a", 99) {
		t.Fatal("Register of existing name returned true")
	}
	names := h.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Fatalf("Names = %v, want sorted [a m z]", names)
	}
}

// TestDynamicRegistrationPropagates exercises the gateway's epoch-
// rollover story end to end in the round engine: one host registers a
// new aggregate mid-run, every other host resolves it locally, and the
// population (including a late observer) converges on the new
// aggregate's true average.
func TestDynamicRegistrationPropagates(t *testing.T) {
	const n = 48
	e := env.NewUniform(n + 1)
	agents := make([]gossip.Agent, n+1)
	countCfg := sketchreset.Config{Params: sketch.DefaultParams, Identifiers: 1}
	avgCfg := pushsumrevert.Config{Lambda: 0.1}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = New(gossip.NodeID(i), map[string]float64{"base": 1}, countCfg, avgCfg)
		i := i
		nodes[i].SetResolver(func(name string) (float64, bool) {
			if name == "late" {
				return float64(i % 4), true
			}
			return 0, false
		})
		agents[i] = nodes[i]
	}
	obs := NewObserver(gossip.NodeID(n), nil, countCfg, avgCfg)
	agents[n] = obs
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.Push, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 30; r++ {
		engine.Step()
	}
	nodes[0].Register("late", 0)
	for r := 0; r < 170; r++ {
		engine.Step()
	}
	registered := 0
	for _, h := range nodes {
		if _, ok := h.Agg("late"); ok {
			registered++
		}
	}
	if registered != n {
		t.Fatalf("aggregate spread to %d/%d hosts", registered, n)
	}
	// Trailing-window mean, as in TestObserverConvergesWithoutBias.
	var got float64
	const window = 30
	for r := 0; r < window; r++ {
		engine.Step()
		v, ok := obs.Average("late")
		if !ok {
			t.Fatal("observer never heard the late aggregate")
		}
		got += v / window
	}
	var truth float64
	for i := 0; i < n; i++ {
		truth += float64(i%4) / n
	}
	if math.Abs(got-truth) > 0.15*truth {
		t.Errorf("observer late = %v (window mean), truth %v", got, truth)
	}
}
