package experiments

import "testing"

func TestAblationMomentsShape(t *testing.T) {
	sc := Scale{N: 1000, Rounds: 50, FailAt: 15, Seed: 1}
	res := AblationMoments(sc)
	if len(res.Series) != 3 {
		t.Fatalf("%d series, want 3", len(res.Series))
	}
	static := lastY(res.Series[0])  // λ=0
	dynamic := lastY(res.Series[2]) // λ=0.1
	// True stddev halves after failing the top half; the static
	// protocol's error stays large (≈14), the dynamic one recovers.
	if static < 5 {
		t.Errorf("static stddev error %v, want stuck high", static)
	}
	if dynamic > 5 {
		t.Errorf("dynamic stddev error %v, want recovered", dynamic)
	}
	if dynamic >= static {
		t.Errorf("dynamic %v not better than static %v", dynamic, static)
	}
}

func TestAblationExtremesShape(t *testing.T) {
	sc := Scale{N: 800, Rounds: 70, FailAt: 15, Seed: 1}
	res := AblationExtremes(sc)
	if len(res.Series) != 2 {
		t.Fatalf("%d series, want 2", len(res.Series))
	}
	ageOut := lastY(res.Series[0])
	static := lastY(res.Series[1])
	// Failing the top half of U[0,100) moves the true max from ≈100 to
	// ≈50; static gossip max keeps reporting the departed ≈100.
	if static < 20 {
		t.Errorf("static max error %v, want stuck near 50", static)
	}
	if ageOut > 5 {
		t.Errorf("age-out max error %v, want recovered", ageOut)
	}
}

func TestAblationGridCutoffShape(t *testing.T) {
	// The propagation-rate effect needs a grid whose flood time clearly
	// exceeds the uniform-gossip cutoff; 28×28 is the smallest side
	// where the U-shape is unambiguous.
	res := AblationGridCutoff(28, 1)
	if len(res.Series) != 2 {
		t.Fatalf("%d series, want 2", len(res.Series))
	}
	pre, post := res.Series[0], res.Series[1]
	if pre.Len() != 5 || post.Len() != 5 {
		t.Fatalf("cutoff sweep lengths %d, %d; want 5", pre.Len(), post.Len())
	}
	// Before failure: the uniform-gossip intercept (7) flickers, a
	// grid-calibrated one (25) is stable.
	if pre.Y[0] < pre.Y[2] {
		t.Errorf("tight cutoff error %v unexpectedly below matched %v", pre.Y[0], pre.Y[2])
	}
	// After failure: an over-generous cutoff (60) has not healed within
	// 30 rounds, the matched one has.
	if post.Y[4] < 3*post.Y[2] {
		t.Errorf("over-generous cutoff error %v not clearly above matched %v", post.Y[4], post.Y[2])
	}
}
