package experiments

import (
	"fmt"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/protocol/moments"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchcount"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/stats"
	"dynagg/internal/wire"
)

// AblationBandwidth (A9) puts numbers on §IV-B's bandwidth argument:
// "Push-Sum-Revert requires several orders of magnitude less bandwidth
// and storage space than Count-Sketch-Reset". Each protocol runs to
// convergence on a uniform network, then its post-convergence gossip
// payload is serialized with the wire encodings a careful radio
// implementation would use. The series reports bytes per message;
// every protocol sends O(1) messages per host per round, so the same
// ordering holds for bytes per round.
func AblationBandwidth(n int, seed uint64) Result {
	res := Result{
		Name:   fmt.Sprintf("wire bytes per gossip message after convergence (n=%d, 64×24 sketches)", n),
		XLabel: "protocol index",
		YLabel: "bytes per message",
	}
	values := uniformValues(n, seed+7)

	runEngine := func(agents []gossip.Agent, model gossip.Model) *gossip.Engine {
		e := env.NewUniform(n)
		engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: model, Seed: seed})
		if err != nil {
			panic(err)
		}
		engine.Run(25)
		return engine
	}

	type row struct {
		name  string
		bytes int
	}
	var rows []row

	// Push-Sum-Revert: a mass vector.
	{
		agents := make([]gossip.Agent, n)
		for i := range agents {
			agents[i] = pushsumrevert.New(gossip.NodeID(i), values[i], pushsumrevert.Config{Lambda: 0.1})
		}
		engine := runEngine(agents, gossip.Push)
		m := engine.Agents()[0].(*pushsumrevert.Node).Mass()
		rows = append(rows, row{"push-sum-revert (mass)", len(wire.AppendMass(nil, m.W, m.V))})
	}
	// Moments: a three-component mass vector.
	{
		agents := make([]gossip.Agent, n)
		for i := range agents {
			agents[i] = moments.New(gossip.NodeID(i), values[i], moments.Config{Lambda: 0.1})
		}
		engine := runEngine(agents, gossip.Push)
		m := engine.Agents()[0].(*moments.Node).Mass()
		rows = append(rows, row{"moments (mass w,v,q)", len(wire.AppendMass3(nil, m.W, m.V, m.Q))})
	}
	// Extremes: the candidate table.
	{
		agents := make([]gossip.Agent, n)
		for i := range agents {
			agents[i] = extremes.New(gossip.NodeID(i), values[i], extremes.Config{Mode: extremes.Max})
		}
		engine := runEngine(agents, gossip.PushPull)
		table := engine.Agents()[0].(*extremes.Node).Table()
		cands := make([]wire.Candidate, len(table))
		for i, c := range table {
			cands[i] = wire.Candidate{Value: c.Value, Owner: int32(c.Owner), Age: int32(c.Age)}
		}
		rows = append(rows, row{"extremes (candidate table)", len(wire.AppendCandidates(nil, cands))})
	}
	// Static Sketch-Count: the bit vector.
	{
		agents := make([]gossip.Agent, n)
		for i := range agents {
			agents[i] = sketchcount.NewCount(gossip.NodeID(i), sketch.DefaultParams)
		}
		engine := runEngine(agents, gossip.PushPull)
		bits := engine.Agents()[0].(*sketchcount.Node).Sketch().Bits()
		rows = append(rows, row{"sketch-count (bit vector)", len(wire.AppendSketchBits(nil, bits))})
	}
	// Count-Sketch-Reset: the RLE counter matrix, post-convergence.
	{
		agents := make([]gossip.Agent, n)
		for i := range agents {
			agents[i] = sketchreset.New(gossip.NodeID(i), sketchreset.Config{
				Params: sketch.DefaultParams, Identifiers: 1,
			})
		}
		engine := runEngine(agents, gossip.PushPull)
		node := engine.Agents()[0].(*sketchreset.Node)
		p := sketch.DefaultParams
		counters := make([]uint8, p.Bins*p.Levels)
		for bin := 0; bin < p.Bins; bin++ {
			for k := 0; k < p.Levels; k++ {
				counters[bin*p.Levels+k] = node.CounterAt(bin, k)
			}
		}
		rows = append(rows, row{"count-sketch-reset (RLE counters)", len(wire.AppendCounters(nil, counters))})
		rows = append(rows, row{"count-sketch-reset (raw counters)", len(counters)})
	}

	series := stats.Series{Label: "bytes/message"}
	for i, r := range rows {
		series.Append(float64(i), float64(r.bytes))
		res.Notef("%-34s %6d bytes", r.name, r.bytes)
	}
	res.Series = append(res.Series, series)

	massBytes := rows[0].bytes
	sketchBytes := rows[len(rows)-2].bytes
	res.Notef("ratio count-sketch-reset / push-sum-revert: %.0fx (§IV-B: \"orders of magnitude\")",
		float64(sketchBytes)/float64(massBytes))
	return res
}
