package experiments

import (
	"fmt"
	"math"

	"dynagg/internal/env"
	"dynagg/internal/failure"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/protocol/moments"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/stats"
)

// meanAbsErrorHook appends, each round, the live-population mean of
// |estimate − truth()|. Estimates are read through Engine.EstimateOf,
// which gates on liveness and works identically on the classic and
// columnar execution paths, so drivers built on it honor
// Scale.Columnar without path-specific metric code.
func meanAbsErrorHook(series *stats.Series, n int, truth func() float64) gossip.Hook {
	return func(round int, e *gossip.Engine) {
		t := truth()
		var sum float64
		cnt := 0
		for id := 0; id < n; id++ {
			if est, ok := e.EstimateOf(gossip.NodeID(id)); ok {
				sum += math.Abs(est - t)
				cnt++
			}
		}
		if cnt > 0 {
			series.Append(float64(round), sum/float64(cnt))
		}
	}
}

// AblationMoments (A6) extends Figure 10's correlated-failure scenario
// to the second moment: dynamic standard-deviation tracking via
// three-component Push-Sum-Revert. Failing the top-valued half changes
// the true stddev from ≈28.9 (U[0,100)) to ≈14.4 (U[0,50)); the static
// protocol keeps reporting the old spread, the dynamic one re-converges.
func AblationMoments(sc Scale) Result {
	res := Result{
		Name:   fmt.Sprintf("dynamic stddev under correlated failures (n=%d, fail %d at round %d)", sc.N, sc.N/2, sc.FailAt),
		XLabel: "round",
		YLabel: "mean |stddev estimate - true stddev|",
	}
	for _, lambda := range []float64{0, 0.01, 0.1} {
		values := uniformValues(sc.N, sc.Seed+7)
		environment := env.NewUniform(sc.N)
		cfg := moments.Config{Lambda: lambda, PushPull: true}
		series := stats.Series{Label: fmt.Sprintf("λ=%.4f", lambda)}
		trueStdDev := func() float64 {
			var sum, sq float64
			n := 0
			for _, id := range environment.Population.AliveIDs() {
				v := values[id]
				sum += v
				sq += v * v
				n++
			}
			if n == 0 {
				return 0
			}
			mean := sum / float64(n)
			return math.Sqrt(sq/float64(n) - mean*mean)
		}
		engineCfg := gossip.Config{
			Env: environment, Model: gossip.PushPull, Seed: sc.Seed,
			Workers:     sc.Workers,
			BeforeRound: []gossip.Hook{failure.TopValuedAt(sc.FailAt, 0.5, environment.Population, values)},
			// The protocol's Estimate IS the standard deviation, and
			// EstimateOf gates on liveness, so the hook works unchanged
			// on both execution paths.
			AfterRound: []gossip.Hook{meanAbsErrorHook(&series, sc.N, trueStdDev)},
		}
		if sc.Columnar {
			engineCfg.Columnar = moments.NewColumnar(values, cfg)
		} else {
			agents := make([]gossip.Agent, sc.N)
			for i := range agents {
				agents[i] = moments.New(gossip.NodeID(i), values[i], cfg)
			}
			engineCfg.Agents = agents
		}
		engine, err := gossip.NewEngine(engineCfg)
		if err != nil {
			panic(err)
		}
		engine.Run(sc.Rounds)
		res.Series = append(res.Series, series)
	}
	for _, s := range res.Series {
		res.Notef("%s: final mean error %.3f", s.Label, s.Y[s.Len()-1])
	}
	return res
}

// AblationExtremes (A7) applies the age-out technique to MAX: after the
// top-valued hosts depart, the dynamic extremum falls back to the
// survivors' maximum within cutoff + flood time, while a static gossip
// max (cutoff = ∞, approximated by a huge cutoff) never recovers.
func AblationExtremes(sc Scale) Result {
	res := Result{
		Name:   fmt.Sprintf("dynamic max under correlated failures (n=%d, fail %d at round %d)", sc.N, sc.N/2, sc.FailAt),
		XLabel: "round",
		YLabel: "mean |max estimate - true max|",
	}
	type mode struct {
		label  string
		cutoff int
	}
	modes := []mode{
		{"age-out (cutoff 20)", 20},
		{"static (no age-out)", 1 << 20},
	}
	for _, m := range modes {
		values := uniformValues(sc.N, sc.Seed+7)
		environment := env.NewUniform(sc.N)
		cfg := extremes.Config{Mode: extremes.Max, Cutoff: m.cutoff}
		series := stats.Series{Label: m.label}
		trueMax := func() float64 {
			best := math.Inf(-1)
			for _, id := range environment.Population.AliveIDs() {
				if values[id] > best {
					best = values[id]
				}
			}
			return best
		}
		engineCfg := gossip.Config{
			Env: environment, Model: gossip.PushPull, Seed: sc.Seed,
			Workers:     sc.Workers,
			BeforeRound: []gossip.Hook{failure.TopValuedAt(sc.FailAt, 0.5, environment.Population, values)},
			AfterRound:  []gossip.Hook{meanAbsErrorHook(&series, sc.N, trueMax)},
		}
		if sc.Columnar {
			engineCfg.Columnar = extremes.NewColumnar(values, cfg)
		} else {
			agents := make([]gossip.Agent, sc.N)
			for i := range agents {
				agents[i] = extremes.New(gossip.NodeID(i), values[i], cfg)
			}
			engineCfg.Agents = agents
		}
		engine, err := gossip.NewEngine(engineCfg)
		if err != nil {
			panic(err)
		}
		engine.Run(sc.Rounds)
		res.Series = append(res.Series, series)
	}
	for _, s := range res.Series {
		res.Notef("%s: final mean error %.3f", s.Label, s.Y[s.Len()-1])
	}
	return res
}

// AblationGridCutoff (A8) probes §IV-A's observation that the bit-age
// cutoff must track the environment's propagation rate: on a spatial
// grid, the uniform-gossip cutoff 7+k/4 is too tight (bits flicker and
// the estimate collapses), while over-generous cutoffs slow the decay
// after failures. The experiment sweeps the cutoff intercept on a
// side×side torus, measuring count error before and after failing half
// the grid.
func AblationGridCutoff(side int, seed uint64) Result {
	n := side * side
	res := Result{
		Name:   fmt.Sprintf("grid count vs cutoff intercept (%d×%d torus, fail half at round 40)", side, side),
		XLabel: "cutoff intercept c in f(k) = c + k/2",
		YLabel: "mean |count estimate - truth| / truth",
	}
	var preSeries, postSeries stats.Series
	preSeries.Label = "steady-state error (pre-failure)"
	postSeries.Label = "error 30 rounds after failure"
	for _, c := range []int{7, 15, 25, 40, 60} {
		intercept := float64(c)
		cutoff := func(k int) float64 { return intercept + float64(k)/2 }
		grid := env.NewGrid(side, side, side)
		agents := make([]gossip.Agent, n)
		for i := range agents {
			agents[i] = sketchreset.New(gossip.NodeID(i), sketchreset.Config{
				Params: sketch.DefaultParams, Identifiers: 1, Cutoff: cutoff,
			})
		}
		engine, err := gossip.NewEngine(gossip.Config{
			Env: grid, Agents: agents, Model: gossip.PushPull, Seed: seed,
		})
		if err != nil {
			panic(err)
		}
		meanRelErr := func(truth float64) float64 {
			var sum float64
			cnt := 0
			for id, a := range engine.Agents() {
				if !grid.Population.Alive(gossip.NodeID(id)) {
					continue
				}
				if est, ok := a.Estimate(); ok {
					sum += math.Abs(est - truth)
					cnt++
				}
			}
			if cnt == 0 {
				return 1
			}
			return sum / float64(cnt) / truth
		}
		engine.Run(40)
		preSeries.Append(intercept, meanRelErr(float64(n)))
		for i := 0; i < n; i += 2 {
			grid.Population.Fail(gossip.NodeID(i))
		}
		engine.Run(30)
		postSeries.Append(intercept, meanRelErr(float64(n/2)))
	}
	res.Series = append(res.Series, preSeries, postSeries)
	res.Notef("too-small intercepts flicker (§IV-A: cutoff must match propagation rate); too-large intercepts heal slowly")
	return res
}
