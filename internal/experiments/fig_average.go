package experiments

import (
	"fmt"

	"dynagg/internal/env"
	"dynagg/internal/failure"
	"dynagg/internal/gossip"
	"dynagg/internal/metrics"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/stats"
)

// FailureModel selects which half of the population the failure wave
// removes.
type FailureModel int

const (
	// Uncorrelated removes a uniform random half (Figure 8): the true
	// average is unchanged in expectation, and so is the average mass.
	Uncorrelated FailureModel = iota
	// Correlated removes the highest-valued half (Figure 10): the true
	// average drops from 50 to 25 while the mass still reflects the
	// old population — the failure mode reversion exists to repair.
	Correlated
)

func (m FailureModel) String() string {
	if m == Correlated {
		return "correlated"
	}
	return "uncorrelated"
}

// AveragingOptions parametrizes the Push-Sum-Revert failure
// experiments.
type AveragingOptions struct {
	Scale
	Model FailureModel
	// Lambdas is the set of reversion constants to sweep.
	Lambdas []float64
	// FullTransfer runs the Figure 10b variant: push gossip, mass
	// split into Parcels parcels, estimates over a Window of rounds.
	FullTransfer bool
	Parcels      int
	Window       int
	// Adaptive uses indegree-scaled reversion instead (ablation A2).
	Adaptive bool
}

// Fig8 reproduces Figure 8: dynamic averaging under uncorrelated
// failures.
func Fig8(sc Scale) Result {
	return Averaging(AveragingOptions{Scale: sc, Model: Uncorrelated, Lambdas: PaperLambdas})
}

// Fig10a reproduces Figure 10a: dynamic averaging under correlated
// failures, basic algorithm.
func Fig10a(sc Scale) Result {
	return Averaging(AveragingOptions{Scale: sc, Model: Correlated, Lambdas: PaperLambdas})
}

// Fig10b reproduces Figure 10b: correlated failures with the
// Full-Transfer optimization (4 parcels, window 3).
func Fig10b(sc Scale) Result {
	return Averaging(AveragingOptions{
		Scale: sc, Model: Correlated, Lambdas: PaperLambdas,
		FullTransfer: true, Parcels: 4, Window: 3,
	})
}

// Averaging runs one Push-Sum-Revert failure experiment per λ and
// returns the per-round deviation-from-truth series.
func Averaging(opts AveragingOptions) Result {
	name := fmt.Sprintf("dynamic averaging, %s failures (n=%d, fail %d at round %d)",
		opts.Model, opts.N, opts.N/2, opts.FailAt)
	if opts.FullTransfer {
		name += fmt.Sprintf(", full-transfer N=%d T=%d", opts.Parcels, opts.Window)
	}
	if opts.Adaptive {
		name += ", adaptive λ"
	}
	res := Result{Name: name, XLabel: "round", YLabel: "stddev from true average"}

	for _, lambda := range opts.Lambdas {
		series := runAveragingOnce(opts, lambda)
		res.Series = append(res.Series, series)
	}
	// Headline numbers for EXPERIMENTS.md: converged plateau and time
	// to reach it.
	for i, s := range res.Series {
		tail := s.TailMean(5)
		if x, ok := s.FirstBelow(tail * 1.25); ok && x > float64(opts.FailAt) {
			res.Notef("λ=%v: post-failure plateau stddev %.3f, reached by round %.0f",
				opts.Lambdas[i], tail, x)
		} else {
			res.Notef("λ=%v: post-failure plateau stddev %.3f", opts.Lambdas[i], tail)
		}
	}
	return res
}

func runAveragingOnce(opts AveragingOptions, lambda float64) stats.Series {
	values := uniformValues(opts.N, opts.Seed+7)
	environment := env.NewUniform(opts.N)
	truth := metrics.NewTruth(values, environment.Population)

	model := gossip.PushPull
	cfg := pushsumrevert.Config{Lambda: lambda, PushPull: true}
	if opts.FullTransfer {
		model = gossip.Push
		cfg = pushsumrevert.Config{
			Lambda: lambda, FullTransfer: true,
			Parcels: opts.Parcels, Window: opts.Window,
		}
	} else if opts.Adaptive {
		model = gossip.Push
		cfg = pushsumrevert.Config{Lambda: lambda, Adaptive: true}
	}

	series := stats.Series{Label: fmt.Sprintf("λ=%.4f", lambda)}
	var failHook gossip.Hook
	switch opts.Model {
	case Correlated:
		failHook = failure.TopValuedAt(opts.FailAt, 0.5, environment.Population, values)
	default:
		failHook = failure.RandomAt(opts.FailAt, 0.5, environment.Population, opts.Seed+13)
	}
	engineCfg := gossip.Config{
		Env: environment, Model: model, Seed: opts.Seed,
		Workers:     opts.Workers,
		BeforeRound: []gossip.Hook{failHook},
		AfterRound:  []gossip.Hook{metrics.DeviationHook(&series, truth.Average)},
	}
	if opts.Columnar {
		engineCfg.Columnar = pushsumrevert.NewColumnar(values, cfg)
	} else {
		agents := make([]gossip.Agent, opts.N)
		for i := range agents {
			agents[i] = pushsumrevert.New(gossip.NodeID(i), values[i], cfg)
		}
		engineCfg.Agents = agents
	}
	engine, err := gossip.NewEngine(engineCfg)
	if err != nil {
		panic(err)
	}
	engine.Run(opts.Rounds)
	return series
}

// uniformValues draws the paper's standard workload: values uniform in
// [0, 100).
func uniformValues(n int, seed uint64) []float64 {
	rng := newRand(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 100
	}
	return out
}
