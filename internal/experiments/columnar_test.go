package experiments

import (
	"math"
	"testing"
)

// TestScaleColumnarMatchesClassic pins the Scale.Columnar flag across
// the whole driver surface — push and push/pull models alike: every
// Scale-driven figure and ablation driver must produce bitwise the
// same series on the struct-of-arrays path as on the classic agent
// path.
func TestScaleColumnarMatchesClassic(t *testing.T) {
	sc := Scale{N: 400, Rounds: 12, FailAt: 5, Seed: 3}
	colSc := sc
	colSc.Columnar = true
	drivers := map[string]func(Scale) Result{
		"fig8":              Fig8,   // push/pull, uncorrelated failures
		"fig9":              Fig9,   // push/pull Count-Sketch-Reset
		"fig10a":            Fig10a, // push/pull, correlated failures
		"fig10b":            Fig10b, // Full-Transfer, push model
		"ablation-adaptive": AblationAdaptive,
		"ablation-pushpull": AblationPushPull, // both legs columnar
		"ablation-epoch":    AblationEpoch,
		"ablation-moments":  AblationMoments,
		"ablation-extremes": AblationExtremes,
	}
	for name, driver := range drivers {
		t.Run(name, func(t *testing.T) {
			classic := driver(sc)
			columnar := driver(colSc)
			if len(classic.Series) != len(columnar.Series) {
				t.Fatalf("series count %d vs %d", len(columnar.Series), len(classic.Series))
			}
			for si, s := range classic.Series {
				cs := columnar.Series[si]
				if s.Label != cs.Label || len(s.Y) != len(cs.Y) {
					t.Fatalf("series %d shape mismatch: %q/%d vs %q/%d",
						si, cs.Label, len(cs.Y), s.Label, len(s.Y))
				}
				for j := range s.Y {
					if math.Float64bits(s.Y[j]) != math.Float64bits(cs.Y[j]) {
						t.Errorf("series %q point %d: columnar %v, classic %v",
							s.Label, j, cs.Y[j], s.Y[j])
						break
					}
				}
			}
		})
	}
}
