package experiments

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"dynagg/internal/stats"
)

func demoResult() Result {
	r := Result{
		Name: "demo", XLabel: "round", YLabel: "stddev",
		Series: []stats.Series{
			{Label: "a", X: []float64{0, 1, 2}, Y: []float64{3, 2, 1}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{9, 8}},
		},
	}
	r.Notef("hello")
	return r
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, demoResult()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("%d rows, want 4 (header + 3)", len(records))
	}
	if records[0][0] != "round" || records[0][1] != "a" || records[0][2] != "b" {
		t.Errorf("header = %v", records[0])
	}
	// Row for x=0: series b has no sample.
	if records[1][0] != "0" || records[1][1] != "3" || records[1][2] != "" {
		t.Errorf("row 0 = %v", records[1])
	}
	if records[2][1] != "2" || records[2][2] != "9" {
		t.Errorf("row 1 = %v", records[2])
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, demoResult()); err != nil {
		t.Fatal(err)
	}
	var got jsonResult
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "demo" || got.XLabel != "round" || got.YLabel != "stddev" {
		t.Errorf("header fields = %+v", got)
	}
	if len(got.Notes) != 1 || got.Notes[0] != "hello" {
		t.Errorf("notes = %v", got.Notes)
	}
	if len(got.Series) != 2 || got.Series[0].Label != "a" || len(got.Series[1].Y) != 2 {
		t.Errorf("series = %+v", got.Series)
	}
}

func TestWriteResultDispatch(t *testing.T) {
	r := demoResult()
	for _, f := range []Format{FormatTable, FormatCSV, FormatJSON, ""} {
		var sb strings.Builder
		if err := WriteResult(&sb, r, f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
		if sb.Len() == 0 {
			t.Errorf("format %q produced nothing", f)
		}
	}
	var sb strings.Builder
	if err := WriteResult(&sb, r, "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}
