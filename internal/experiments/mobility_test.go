package experiments

import "testing"

func TestAblationMobilityShape(t *testing.T) {
	sc := Scale{N: 1200, Rounds: 80, FailAt: 30, Seed: 1}
	res := AblationMobility(sc)
	if len(res.Series) != 4 {
		t.Fatalf("%d series, want 4 (3 λ + degree)", len(res.Series))
	}
	static := res.Series[0].TailMean(5)  // λ=0
	dynamic := res.Series[2].TailMean(5) // λ=0.1
	// Correlated departure from the field: λ=0 stays wrong, reversion
	// recovers even though connectivity is proximity-limited.
	if static < 10 {
		t.Errorf("static tail stddev %v, want stuck near 25", static)
	}
	if dynamic > 10 {
		t.Errorf("λ=0.1 tail stddev %v, want recovered", dynamic)
	}
	deg := res.Series[3]
	if deg.Len() == 0 {
		t.Fatal("no degree series")
	}
	mean := 0.0
	for _, y := range deg.Y {
		mean += y
	}
	mean /= float64(deg.Len())
	if mean < 1 || mean > 50 {
		t.Errorf("mean radio degree %v implausible for the configured density", mean)
	}
}
