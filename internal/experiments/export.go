package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// unionX returns the sorted union of x values across all series.
func unionX(r Result) []float64 {
	set := make(map[float64]bool)
	for _, s := range r.Series {
		for _, x := range s.X {
			set[x] = true
		}
	}
	xs := make([]float64, 0, len(set))
	for x := range set {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs
}

// WriteCSV renders the result as CSV: a header row (the x label then
// one column per series), then one row per x value. Cells where a
// series has no sample are empty. Notes are not representable in CSV
// and are omitted; use WriteJSON to keep them.
func WriteCSV(w io.Writer, r Result) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(r.Series)+1)
	header = append(header, r.XLabel)
	for _, s := range r.Series {
		header = append(header, s.Label)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	idx := make([]map[float64]float64, len(r.Series))
	for i, s := range r.Series {
		m := make(map[float64]float64, s.Len())
		for j := range s.X {
			m[s.X[j]] = s.Y[j]
		}
		idx[i] = m
	}
	for _, x := range unionX(r) {
		row := make([]string, 0, len(r.Series)+1)
		row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		for i := range r.Series {
			if y, ok := idx[i][x]; ok {
				row = append(row, strconv.FormatFloat(y, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonResult is the stable JSON shape for a Result.
type jsonResult struct {
	Name   string       `json:"name"`
	XLabel string       `json:"xLabel"`
	YLabel string       `json:"yLabel"`
	Notes  []string     `json:"notes,omitempty"`
	Series []jsonSeries `json:"series"`
}

type jsonSeries struct {
	Label string    `json:"label"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"`
}

// WriteJSON renders the result as pretty-printed JSON, including the
// notes.
func WriteJSON(w io.Writer, r Result) error {
	out := jsonResult{
		Name:   r.Name,
		XLabel: r.XLabel,
		YLabel: r.YLabel,
		Notes:  r.Notes,
	}
	for _, s := range r.Series {
		out.Series = append(out.Series, jsonSeries{Label: s.Label, X: s.X, Y: s.Y})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Format names an output rendering for results.
type Format string

// Supported output formats.
const (
	FormatTable Format = "table"
	FormatCSV   Format = "csv"
	FormatJSON  Format = "json"
)

// WriteResult renders the result in the given format.
func WriteResult(w io.Writer, r Result, f Format) error {
	switch f {
	case FormatTable, "":
		PrintResult(w, r)
		return nil
	case FormatCSV:
		return WriteCSV(w, r)
	case FormatJSON:
		return WriteJSON(w, r)
	default:
		return fmt.Errorf("experiments: unknown format %q (have table, csv, json)", f)
	}
}
