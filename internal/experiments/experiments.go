// Package experiments contains one driver per figure of the paper's
// evaluation (§V) plus the ablations listed in DESIGN.md. Each driver
// builds the workload, runs the simulation, and returns labelled data
// series shaped like the paper's plots; PrintResult renders them as a
// column table (x, then one column per series) that can be piped into
// any plotting tool.
//
// Sizes default to a laptop-scale 10,000 hosts so the full suite runs
// in minutes; pass Full to restore the paper's 100,000.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dynagg/internal/stats"
)

// Result is the output of one experiment: a set of series sharing an
// x axis, plus free-form notes (measured headline numbers, cutoff
// fits, substitutions).
type Result struct {
	Name   string
	XLabel string
	YLabel string
	Series []stats.Series
	Notes  []string
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// PrintResult renders the result as a whitespace-aligned column table.
func PrintResult(w io.Writer, r Result) {
	fmt.Fprintf(w, "# %s\n", r.Name)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	if len(r.Series) == 0 {
		return
	}
	// Union of x values across series, in order.
	xsSet := make(map[float64]bool)
	for _, s := range r.Series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := make([]string, 0, len(r.Series)+1)
	header = append(header, r.XLabel)
	for _, s := range r.Series {
		header = append(header, s.Label)
	}
	fmt.Fprintln(w, strings.Join(header, "\t"))
	// Index each series by x for sparse alignment.
	idx := make([]map[float64]float64, len(r.Series))
	for i, s := range r.Series {
		m := make(map[float64]float64, s.Len())
		for j := range s.X {
			m[s.X[j]] = s.Y[j]
		}
		idx[i] = m
	}
	for _, x := range xs {
		row := make([]string, 0, len(r.Series)+1)
		row = append(row, trimFloat(x))
		for i := range r.Series {
			if y, ok := idx[i][x]; ok {
				row = append(row, fmt.Sprintf("%.4f", y))
			} else {
				row = append(row, "-")
			}
		}
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.3f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Scale selects experiment sizing.
type Scale struct {
	// N is the host population for uniform-gossip experiments.
	N int
	// Rounds is the simulated round count.
	Rounds int
	// FailAt is the round at which the failure wave strikes.
	FailAt int
	// Seed drives all randomness.
	Seed uint64
	// Workers sizes the engine's worker pool: 0 runs the sequential
	// executor, k >= 1 the sharded parallel one (byte-identical
	// results either way; see gossip.Config.Workers).
	Workers int
	// Columnar selects the struct-of-arrays execution path
	// (gossip.Config.Columnar) — byte-identical results, flat-loop
	// speed. Every protocol has a columnar form and both gossip models
	// run on the columnar engine (push/pull through the pair-batch
	// ColExchanger executor), so all Scale-driven figure and ablation
	// drivers honor the flag.
	Columnar bool
}

// Default is the laptop-scale sizing: 10,000 hosts.
func Default() Scale { return Scale{N: 10000, Rounds: 60, FailAt: 20, Seed: 1} }

// Full is the paper's sizing: 100,000 hosts.
func Full() Scale { return Scale{N: 100000, Rounds: 60, FailAt: 20, Seed: 1} }

// PaperLambdas are the reversion constants swept in Figures 8 and 10.
var PaperLambdas = []float64{0, 0.001, 0.01, 0.1, 0.5}

// TraceLambdas are the constants swept in Figure 11's averaging
// column.
var TraceLambdas = []float64{0, 0.001, 0.01}
