package experiments

import (
	"fmt"
	"math"

	"dynagg/internal/env"
	"dynagg/internal/failure"
	"dynagg/internal/gossip"
	"dynagg/internal/metrics"
	"dynagg/internal/overlay"
	"dynagg/internal/protocol/epoch"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/sketch"
	"dynagg/internal/stats"
)

// AblationPushPull (A1) compares push against push/pull gossip for
// static Push-Sum, checking Karp et al.'s claim (§III-A) that
// push/pull roughly halves initial convergence time.
func AblationPushPull(sc Scale) Result {
	res := Result{
		Name:   fmt.Sprintf("push vs push/pull convergence of static Push-Sum (n=%d)", sc.N),
		XLabel: "round",
		YLabel: "stddev from true average",
	}
	for _, model := range []gossip.Model{gossip.Push, gossip.PushPull} {
		values := uniformValues(sc.N, sc.Seed+7)
		environment := env.NewUniform(sc.N)
		truth := metrics.NewTruth(values, environment.Population)
		series := stats.Series{Label: model.String()}
		engineCfg := gossip.Config{
			Env: environment, Model: model, Seed: sc.Seed,
			Workers:    sc.Workers,
			AfterRound: []gossip.Hook{metrics.DeviationHook(&series, truth.Average)},
		}
		if sc.Columnar {
			engineCfg.Columnar = pushsum.NewColumnarAverage(values)
		} else {
			agents := make([]gossip.Agent, sc.N)
			for i := range agents {
				agents[i] = pushsum.NewAverage(gossip.NodeID(i), values[i])
			}
			engineCfg.Agents = agents
		}
		engine, err := gossip.NewEngine(engineCfg)
		if err != nil {
			panic(err)
		}
		engine.Run(sc.Rounds)
		res.Series = append(res.Series, series)
		if x, ok := series.FirstBelow(0.5); ok {
			res.Notef("%s: stddev < 0.5 by round %.0f", model, x)
		} else {
			res.Notef("%s: never reached stddev 0.5 in %d rounds", model, sc.Rounds)
		}
	}
	return res
}

// AblationAdaptive (A2) compares fixed-λ reversion against
// indegree-scaled (adaptive) reversion after a correlated failure,
// checking the §III-A claim that adaptive reversion roughly halves
// reconvergence time at equal λ.
func AblationAdaptive(sc Scale) Result {
	res := Result{
		Name:   fmt.Sprintf("fixed vs adaptive λ reversion, correlated failures (n=%d)", sc.N),
		XLabel: "round",
		YLabel: "stddev from true average",
	}
	const lambda = 0.1
	for _, adaptive := range []bool{false, true} {
		label := fmt.Sprintf("fixed λ=%.2f", lambda)
		if adaptive {
			label = fmt.Sprintf("adaptive λ=%.2f", lambda)
		}
		values := uniformValues(sc.N, sc.Seed+7)
		environment := env.NewUniform(sc.N)
		truth := metrics.NewTruth(values, environment.Population)
		cfg := pushsumrevert.Config{Lambda: lambda, Adaptive: adaptive}
		series := stats.Series{Label: label}
		engineCfg := gossip.Config{
			Env: environment, Model: gossip.Push, Seed: sc.Seed,
			Workers:     sc.Workers,
			BeforeRound: []gossip.Hook{failure.TopValuedAt(sc.FailAt, 0.5, environment.Population, values)},
			AfterRound:  []gossip.Hook{metrics.DeviationHook(&series, truth.Average)},
		}
		if sc.Columnar {
			engineCfg.Columnar = pushsumrevert.NewColumnar(values, cfg)
		} else {
			agents := make([]gossip.Agent, sc.N)
			for i := range agents {
				agents[i] = pushsumrevert.New(gossip.NodeID(i), values[i], cfg)
			}
			engineCfg.Agents = agents
		}
		engine, err := gossip.NewEngine(engineCfg)
		if err != nil {
			panic(err)
		}
		engine.Run(sc.Rounds)
		res.Series = append(res.Series, series)
		tail := series.TailMean(5)
		if x, ok := firstBelowAfter(series, tail*1.5, sc.FailAt); ok {
			res.Notef("%s: reconverged (within 1.5x of plateau %.3f) by round %.0f", label, tail, x)
		} else {
			res.Notef("%s: plateau %.3f, no reconvergence point found", label, tail)
		}
	}
	return res
}

func firstBelowAfter(s stats.Series, threshold float64, after int) (float64, bool) {
	for i := range s.X {
		if s.X[i] > float64(after) && s.Y[i] <= threshold {
			return s.X[i], true
		}
	}
	return 0, false
}

// AblationBins (A3) measures FM sketch relative error against the bin
// count, checking Flajolet-Martin's 0.78/√m stochastic-averaging bound
// (9.7% at the paper's 64 bins).
func AblationBins(trials int, population int, seed uint64) Result {
	res := Result{
		Name:   fmt.Sprintf("sketch error vs bins (population %d, %d trials)", population, trials),
		XLabel: "bins",
		YLabel: "relative error",
	}
	measured := stats.Series{Label: "measured RMS rel. error"}
	analytic := stats.Series{Label: "0.78/sqrt(m)"}
	rng := newRand(seed)
	for _, m := range []int{8, 16, 32, 64, 128} {
		p := sketch.Params{Bins: m, Levels: 24}
		var sq float64
		for t := 0; t < trials; t++ {
			s := sketch.New(p)
			for i := 0; i < population; i++ {
				s.Insert(rng.Uint64())
			}
			rel := (s.Estimate() - float64(population)) / float64(population)
			sq += rel * rel
		}
		measured.Append(float64(m), math.Sqrt(sq/float64(trials)))
		analytic.Append(float64(m), p.ExpectedRelativeError())
	}
	res.Series = append(res.Series, measured, analytic)
	return res
}

// AblationEpoch (A4) demonstrates §II-C's critique of epoch-based
// dynamic aggregation: epoch lengths below the network's convergence
// time never produce accurate estimates, while long epochs answer with
// stale values after a failure. Push-Sum-Revert (λ=0.1) is shown for
// comparison.
func AblationEpoch(sc Scale) Result {
	res := Result{
		Name:   fmt.Sprintf("epoch length sensitivity vs reversion (n=%d, correlated failure at %d)", sc.N, sc.FailAt),
		XLabel: "round",
		YLabel: "stddev from true average",
	}
	for _, length := range []int{5, 10, 20, 40} {
		values := uniformValues(sc.N, sc.Seed+7)
		environment := env.NewUniform(sc.N)
		truth := metrics.NewTruth(values, environment.Population)
		series := stats.Series{Label: fmt.Sprintf("epoch len %d", length)}
		engineCfg := gossip.Config{
			Env: environment, Model: gossip.Push, Seed: sc.Seed,
			Workers:     sc.Workers,
			BeforeRound: []gossip.Hook{failure.TopValuedAt(sc.FailAt, 0.5, environment.Population, values)},
			AfterRound:  []gossip.Hook{metrics.DeviationHook(&series, truth.Average)},
		}
		if sc.Columnar {
			engineCfg.Columnar = epoch.NewColumnar(values, epoch.Config{Length: length})
		} else {
			agents := make([]gossip.Agent, sc.N)
			for i := range agents {
				agents[i] = epoch.New(gossip.NodeID(i), values[i], epoch.Config{Length: length})
			}
			engineCfg.Agents = agents
		}
		engine, err := gossip.NewEngine(engineCfg)
		if err != nil {
			panic(err)
		}
		engine.Run(sc.Rounds)
		res.Series = append(res.Series, series)
		res.Notef("epoch len %d: tail stddev %.3f", length, series.TailMean(5))
	}
	// Reference: Push-Sum-Revert.
	ref := runAveragingOnce(AveragingOptions{Scale: sc, Model: Correlated}, 0.1)
	ref.Label = "push-sum-revert λ=0.1"
	res.Series = append(res.Series, ref)
	res.Notef("push-sum-revert λ=0.1: tail stddev %.3f", ref.TailMean(5))
	return res
}

// AblationOverlay (A5) contrasts TAG-style spanning-tree aggregation
// with gossip under churn on a grid topology: the tree is exact when
// nothing fails between build and collection, but loses entire
// subtrees as failures mount, while Push-Sum-Revert degrades smoothly.
func AblationOverlay(side int, seed uint64) Result {
	res := Result{
		Name:   fmt.Sprintf("overlay (TAG tree) vs gossip under churn, %dx%d grid", side, side),
		XLabel: "failed fraction (%)",
		YLabel: "relative aggregate error",
	}
	treeSeries := stats.Series{Label: "TAG spanning tree"}
	gossipSeries := stats.Series{Label: "push-sum-revert λ=0.1"}

	for _, failPct := range []int{0, 5, 10, 20, 40} {
		frac := float64(failPct) / 100

		// --- Overlay: build on the intact grid, fail, then collect.
		grid := env.NewGrid(side, side, 0)
		values := uniformValues(grid.Size(), seed+7)
		tree, err := overlay.Build(gridTopology{grid}, 0)
		if err != nil {
			panic(err)
		}
		failRandomDirect(grid.Population, frac, seed+13)
		trueAvg := liveAverage(values, grid.Population)
		result := tree.Collect(values, func(id gossip.NodeID) bool { return grid.Population.Alive(id) })
		treeErr := 0.0
		if trueAvg != 0 {
			treeErr = math.Abs(result.Average()-trueAvg) / math.Abs(trueAvg)
		}
		treeSeries.Append(float64(failPct), treeErr)

		// --- Gossip on the same topology and failure set.
		grid2 := env.NewGrid(side, side, 0)
		agents := make([]gossip.Agent, grid2.Size())
		for i := range agents {
			agents[i] = pushsumrevert.New(gossip.NodeID(i), values[i],
				pushsumrevert.Config{Lambda: 0.1, PushPull: true})
		}
		truth := metrics.NewTruth(values, grid2.Population)
		engine, err := gossip.NewEngine(gossip.Config{
			Env: grid2, Agents: agents, Model: gossip.PushPull, Seed: seed,
			BeforeRound: []gossip.Hook{func(r int, e *gossip.Engine) {
				if r == 10 {
					failRandomDirect(grid2.Population, frac, seed+13)
				}
			}},
		})
		if err != nil {
			panic(err)
		}
		engine.Run(40)
		ests := engine.Estimates()
		gerr := 0.0
		if ta := truth.Average(); ta != 0 {
			gerr = stats.DeviationFrom(ests, ta) / math.Abs(ta)
		}
		gossipSeries.Append(float64(failPct), gerr)
	}
	res.Series = append(res.Series, treeSeries, gossipSeries)
	res.Notef("tree error comes from lost subtrees; gossip error from reversion bias")
	return res
}

// gridTopology adapts env.Grid to overlay.Topology.
type gridTopology struct{ g *env.Grid }

func (t gridTopology) Size() int                   { return t.g.Size() }
func (t gridTopology) Alive(id gossip.NodeID) bool { return t.g.Population.Alive(id) }
func (t gridTopology) Neighbors(id gossip.NodeID) []gossip.NodeID {
	return t.g.NeighborsOf(id)
}

func failRandomDirect(pop *env.Population, frac float64, seed uint64) {
	rng := newRand(seed)
	n := pop.Size()
	k := int(frac * float64(n))
	if k <= 0 {
		return
	}
	for _, i := range rng.Sample(make([]int, k), n) {
		pop.Fail(gossip.NodeID(i))
	}
}

func liveAverage(values []float64, pop *env.Population) float64 {
	var sum float64
	ids := pop.AliveIDs()
	if len(ids) == 0 {
		return 0
	}
	for _, id := range ids {
		sum += values[id]
	}
	return sum / float64(len(ids))
}
