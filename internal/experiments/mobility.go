package experiments

import (
	"fmt"

	"dynagg/internal/env"
	"dynagg/internal/failure"
	"dynagg/internal/gossip"
	"dynagg/internal/metrics"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/stats"
)

// AblationMobility (A10) runs dynamic averaging in the paper's
// motivating setting: devices under random-waypoint mobility that can
// only gossip within radio range. Mobility supplies the long-distance
// mixing that uniform gossip assumes (§IV cites host mobility as one
// of the mechanisms achieving logarithmic spatial convergence). At
// round FailAt the highest-valued half of the devices leaves the area
// silently; the reversion pulls survivors back to their own average.
// The mean radio degree is reported alongside, mirroring Figure 11's
// group-size series.
func AblationMobility(sc Scale) Result {
	// Field sized for a mean degree of ≈8 at the configured population:
	// degree ≈ n·πR²/area.
	n := sc.N
	if n > 5000 {
		n = 5000 // mobility index rebuilds dominate beyond this; density is what matters
	}
	cfg := env.MobileConfig{
		N: n, Width: 2000, Height: 2000, Range: 64, MinSpeed: 10, MaxSpeed: 40,
		Seed: sc.Seed + 5,
	}
	res := Result{
		Name: fmt.Sprintf("dynamic averaging under random-waypoint mobility (n=%d, range %.0f m, fail %d at round %d)",
			n, cfg.Range, n/2, sc.FailAt),
		XLabel: "round",
		YLabel: "stddev from true average",
	}

	var degSeries stats.Series
	degSeries.Label = "mean radio degree"
	for i, lambda := range []float64{0, 0.01, 0.1} {
		mob, err := env.NewMobile(cfg)
		if err != nil {
			panic(err)
		}
		values := uniformValues(n, sc.Seed+7)
		truth := metrics.NewTruth(values, mob.Population)
		agents := make([]gossip.Agent, n)
		for j := range agents {
			agents[j] = pushsumrevert.New(gossip.NodeID(j), values[j],
				pushsumrevert.Config{Lambda: lambda, PushPull: true})
		}
		series := stats.Series{Label: fmt.Sprintf("λ=%.4f", lambda)}
		hooks := []gossip.Hook{metrics.DeviationHook(&series, truth.Average)}
		if i == 0 {
			hooks = append(hooks, func(round int, e *gossip.Engine) {
				degSeries.Append(float64(round), mob.MeanDegree())
			})
		}
		engine, err := gossip.NewEngine(gossip.Config{
			Env: mob, Agents: agents, Model: gossip.PushPull, Seed: sc.Seed,
			Workers:     sc.Workers,
			BeforeRound: []gossip.Hook{failure.TopValuedAt(sc.FailAt, 0.5, mob.Population, values)},
			AfterRound:  hooks,
		})
		if err != nil {
			panic(err)
		}
		engine.Run(sc.Rounds)
		res.Series = append(res.Series, series)
	}
	res.Series = append(res.Series, degSeries)
	for _, s := range res.Series[:3] {
		res.Notef("%s: post-failure tail stddev %.3f", s.Label, s.TailMean(5))
	}
	res.Notef("mean radio degree ≈ %.1f", stats.Mean(degSeries.Y))
	return res
}
