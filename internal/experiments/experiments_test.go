package experiments

import (
	"math"
	"strings"
	"testing"

	"dynagg/internal/stats"
)

// tiny returns a scale small enough for unit tests while preserving
// every curve's qualitative shape.
func tiny() Scale { return Scale{N: 1500, Rounds: 40, FailAt: 15, Seed: 1} }

func lastY(s stats.Series) float64 { return s.Y[s.Len()-1] }

func TestFig8Shape(t *testing.T) {
	res := Fig8(tiny())
	if len(res.Series) != len(PaperLambdas) {
		t.Fatalf("%d series, want %d", len(res.Series), len(PaperLambdas))
	}
	for i, s := range res.Series {
		if s.Len() != tiny().Rounds {
			t.Fatalf("series %d has %d points, want %d", i, s.Len(), tiny().Rounds)
		}
	}
	// Figure 8's claim: uncorrelated failures have no adverse effect.
	// Every λ's final deviation is small; λ=0 fully converges.
	if final := lastY(res.Series[0]); final > 2 {
		t.Errorf("λ=0 final deviation %v after uncorrelated failures, want ≈ 0", final)
	}
	// Larger λ leaves a larger steady-state error: λ=0.5 worst.
	if lastY(res.Series[4]) < lastY(res.Series[1]) {
		t.Errorf("λ=0.5 deviation %v below λ=0.001's %v", lastY(res.Series[4]), lastY(res.Series[1]))
	}
}

func TestFig10aShape(t *testing.T) {
	sc := tiny()
	res := Fig10a(sc)
	// Figure 10a's claim: with correlated failures λ=0 never recovers
	// (stuck near |50-25| = 25), while λ=0.1 reconverges to a small
	// plateau.
	static := lastY(res.Series[0])
	if static < 10 {
		t.Errorf("λ=0 final deviation %v, want stuck near 25", static)
	}
	lam01 := lastY(res.Series[3]) // λ=0.1
	if lam01 > 10 {
		t.Errorf("λ=0.1 final deviation %v, want reconverged", lam01)
	}
	if lam01 >= static {
		t.Errorf("λ=0.1 (%v) not better than λ=0 (%v)", lam01, static)
	}
}

func TestFig10bShape(t *testing.T) {
	// The λ=0.1 < λ=0.5 plateau ordering only emerges above the
	// window-sampling noise floor, which needs a larger population than
	// the other shape tests (the paper demonstrates it at 100,000).
	sc := Scale{N: 6000, Rounds: 50, FailAt: 20, Seed: 1}
	res := Fig10b(sc)
	// Full-Transfer: λ=0.1 reaches a low plateau; λ=0.5 converges
	// faster but to a higher plateau than λ=0.1 (the paper's trade-off).
	lam01 := res.Series[3].TailMean(5)
	lam05 := res.Series[4].TailMean(5)
	if lam01 > 6 {
		t.Errorf("full-transfer λ=0.1 plateau %v, want small", lam01)
	}
	if lam05 < lam01 {
		t.Errorf("λ=0.5 plateau %v below λ=0.1's %v, expected higher steady error", lam05, lam01)
	}
	// Both dynamic settings beat the static protocol, which stays stuck
	// near 25.
	static := res.Series[0].TailMean(5)
	if static < 5*lam05 {
		t.Errorf("static plateau %v not clearly worse than λ=0.5's %v", static, lam05)
	}
}

// TestFig10bPaperNumbers checks the two inline §V-A headline numbers
// at the default 10,000-host scale (the paper: 100,000):
// λ=0.5 converges fast to stddev ≈ 2.13; λ=0.1 converges slower to
// ≈ 0.694. Our plateaus must land within 35% of the paper's, and the
// speed/accuracy ordering must hold exactly.
func TestFig10bPaperNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("10,000-host run")
	}
	res := Fig10b(Default())
	lam01 := res.Series[3].TailMean(5)
	lam05 := res.Series[4].TailMean(5)
	if math.Abs(lam01-0.694) > 0.35*0.694 {
		t.Errorf("λ=0.1 plateau %v, paper 0.694", lam01)
	}
	if math.Abs(lam05-2.13) > 0.35*2.13 {
		t.Errorf("λ=0.5 plateau %v, paper 2.13", lam05)
	}
	// λ=0.5 must reach its plateau sooner than λ=0.1 reaches its own.
	x05, ok05 := res.Series[4].FirstBelow(lam05 * 1.25)
	x01, ok01 := res.Series[3].FirstBelow(lam01 * 1.25)
	if ok05 && ok01 && x05 > x01 {
		t.Errorf("λ=0.5 reached its plateau at round %v, after λ=0.1's %v", x05, x01)
	}
}

func TestFig9Shape(t *testing.T) {
	res := Fig9(tiny())
	if len(res.Series) != 2 {
		t.Fatalf("%d series, want 2 (limited, naive)", len(res.Series))
	}
	var limited, naive stats.Series
	for _, s := range res.Series {
		if strings.Contains(s.Label, "off") || strings.Contains(s.Label, "naive") {
			naive = s
		} else {
			limited = s
		}
	}
	if limited.Len() == 0 || naive.Len() == 0 {
		t.Fatalf("missing labelled series: %v", []string{res.Series[0].Label, res.Series[1].Label})
	}
	// After the failure, propagation limiting recovers while the naive
	// sketch stays wrong by ~half the population.
	if lastY(limited) > lastY(naive)/2 {
		t.Errorf("limited final deviation %v not clearly below naive %v", lastY(limited), lastY(naive))
	}
}

func TestFig6ProducesCDFsAndLinearCutoff(t *testing.T) {
	opts := Fig6Options{Sizes: []int{500, 2000}, Rounds: 25, MaxCounter: 12, Seed: 1}
	frs, res := Fig6(opts)
	if len(frs) != 2 {
		t.Fatalf("%d results, want 2", len(frs))
	}
	for _, fr := range frs {
		if len(fr.PerBit) == 0 {
			t.Fatalf("size %d: no per-bit CDFs", fr.Size)
		}
		// Low-order bits are sourced by many hosts: their counters
		// concentrate near 0, so the 99th percentile is small.
		if fr.PerBit[0].Total() == 0 {
			t.Errorf("size %d: bit 0 CDF empty", fr.Size)
		}
	}
	intercept, invSlope := FitCutoff(frs, 0.99)
	// The paper's fit is 7 + k/4; at test scale we only require a
	// positive intercept in single digits and a clearly sub-linear
	// slope (1/invSlope < 1).
	if intercept <= 0 || intercept > 12 {
		t.Errorf("fitted intercept %v implausible", intercept)
	}
	if invSlope < 1 {
		t.Errorf("fitted inverse slope %v, want > 1 (slope < 1 per bit)", invSlope)
	}
	if len(res.Notes) == 0 {
		t.Error("no notes on fig6 result")
	}
}

func TestFig11AvgShape(t *testing.T) {
	res := Fig11Avg(1, 1)
	// Series: one per trace lambda plus the group-size series.
	if len(res.Series) != len(TraceLambdas)+1 {
		t.Fatalf("%d series, want %d", len(res.Series), len(TraceLambdas)+1)
	}
	for i, s := range res.Series {
		if s.Len() == 0 {
			t.Fatalf("series %d empty", i)
		}
	}
	// Group-relative deviations are bounded by the value range.
	for _, s := range res.Series[:len(TraceLambdas)] {
		for _, y := range s.Y {
			if y < 0 || y > 100 || math.IsNaN(y) {
				t.Fatalf("deviation %v out of range", y)
			}
		}
	}
}

func TestFig11SumShape(t *testing.T) {
	res := Fig11Sum(1, 1)
	if len(res.Series) != 4 {
		t.Fatalf("%d series, want 4 (three modes + group size)", len(res.Series))
	}
	for i, s := range res.Series {
		if s.Len() == 0 {
			t.Fatalf("series %d empty", i)
		}
	}
}

func TestTraceDatasetSelection(t *testing.T) {
	for i := 1; i <= 3; i++ {
		p := TraceDataset(i)
		if p.N == 0 {
			t.Errorf("dataset %d empty", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("TraceDataset(0) did not panic")
		}
	}()
	TraceDataset(0)
}

func TestAblationPushPull(t *testing.T) {
	res := AblationPushPull(tiny())
	if len(res.Series) < 2 {
		t.Fatalf("%d series", len(res.Series))
	}
	// Push/pull must converge at least as fast as push: find first
	// round below 1.0 for each.
	pushX, ok1 := res.Series[0].FirstBelow(1)
	pullX, ok2 := res.Series[1].FirstBelow(1)
	if !ok1 || !ok2 {
		t.Skip("neither converged below threshold at test scale")
	}
	if pullX > pushX {
		t.Errorf("push/pull converged at round %v, push at %v: expected push/pull faster or equal", pullX, pushX)
	}
}

func TestAblationAdaptive(t *testing.T) {
	res := AblationAdaptive(tiny())
	if len(res.Series) == 0 {
		t.Fatal("no series")
	}
	for _, s := range res.Series {
		if s.Len() == 0 {
			t.Fatal("empty series")
		}
	}
}

func TestAblationBins(t *testing.T) {
	res := AblationBins(8, 3000, 1)
	if len(res.Series) == 0 {
		t.Fatal("no series")
	}
	// Error must broadly decrease as bins increase; compare the first
	// and last bin counts in the sweep.
	s := res.Series[0]
	if s.Len() < 3 {
		t.Fatalf("bin sweep too short: %d", s.Len())
	}
	if s.Y[s.Len()-1] > s.Y[0] {
		t.Errorf("relative error grew with bins: %v -> %v", s.Y[0], s.Y[s.Len()-1])
	}
}

func TestAblationEpoch(t *testing.T) {
	res := AblationEpoch(tiny())
	if len(res.Series) == 0 {
		t.Fatal("no series")
	}
}

func TestAblationOverlay(t *testing.T) {
	res := AblationOverlay(20, 1)
	if len(res.Notes) == 0 && len(res.Series) == 0 {
		t.Fatal("overlay ablation produced nothing")
	}
}

func TestPrintResult(t *testing.T) {
	var sb strings.Builder
	r := Result{
		Name: "demo", XLabel: "round", YLabel: "y",
		Series: []stats.Series{
			{Label: "a", X: []float64{0, 1}, Y: []float64{1, 2}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{3, 4}},
		},
	}
	r.Notef("note %d", 42)
	PrintResult(&sb, r)
	out := sb.String()
	for _, want := range []string{"# demo", "# note 42", "round\ta\tb", "0\t1.0000\t-", "1\t2.0000\t3.0000", "2\t-\t4.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintResultEmpty(t *testing.T) {
	var sb strings.Builder
	PrintResult(&sb, Result{Name: "empty"})
	if !strings.Contains(sb.String(), "# empty") {
		t.Error("empty result not rendered")
	}
}

func TestScales(t *testing.T) {
	if Default().N != 10000 || Full().N != 100000 {
		t.Error("scales changed unexpectedly")
	}
}
