package experiments

import (
	"fmt"
	"math"

	"dynagg/internal/env"
	"dynagg/internal/failure"
	"dynagg/internal/gossip"
	"dynagg/internal/metrics"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/stats"
	"dynagg/internal/xrand"
)

func newRand(seed uint64) *xrand.Rand { return xrand.New(seed) }

// Fig9 reproduces Figure 9: dynamic sketch counting under massive
// failure. Every host holds value 1 (so the network sum equals the
// live host count); after FailAt rounds, half the hosts are removed.
// Two lines: naive sketch counting (no decay; the estimate never
// recovers) and propagation limiting with the f(k)=7+k/4 cutoff (the
// estimate reverts within ~10 rounds).
func Fig9(sc Scale) Result {
	res := Result{
		Name:   fmt.Sprintf("dynamic counting under failure (n=%d, fail %d at round %d)", sc.N, sc.N/2, sc.FailAt),
		XLabel: "round",
		YLabel: "stddev from true sum",
	}
	for _, limited := range []bool{true, false} {
		label := "propagation limiting off"
		if limited {
			label = "propagation limiting on"
		}
		series := runCountingOnce(sc, limited, label)
		res.Series = append(res.Series, series)
	}
	on, off := res.Series[0], res.Series[1]
	res.Notef("limiting on: post-failure tail stddev %.0f (reverts)", on.TailMean(5))
	res.Notef("limiting off: post-failure tail stddev %.0f (stuck at pre-failure count)", off.TailMean(5))
	return res
}

func runCountingOnce(sc Scale, limited bool, label string) stats.Series {
	environment := env.NewUniform(sc.N)
	values := onesValues(sc.N)
	truth := metrics.NewTruth(values, environment.Population)

	cfg := sketchreset.Config{
		Params:      sketch.DefaultParams,
		Identifiers: 1,
		NoDecay:     !limited,
	}
	series := stats.Series{Label: label}
	engineCfg := gossip.Config{
		Env: environment, Model: gossip.PushPull, Seed: sc.Seed,
		Workers:     sc.Workers,
		BeforeRound: []gossip.Hook{failure.RandomAt(sc.FailAt, 0.5, environment.Population, sc.Seed+13)},
		AfterRound:  []gossip.Hook{metrics.DeviationHook(&series, truth.Sum)},
	}
	if sc.Columnar {
		engineCfg.Columnar = sketchreset.NewColumnar(sc.N, cfg)
	} else {
		agents := make([]gossip.Agent, sc.N)
		for i := range agents {
			agents[i] = sketchreset.New(gossip.NodeID(i), cfg)
		}
		engineCfg.Agents = agents
	}
	engine, err := gossip.NewEngine(engineCfg)
	if err != nil {
		panic(err)
	}
	engine.Run(sc.Rounds)
	return series
}

func onesValues(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// Fig6Options parametrizes the bit-counter distribution experiment.
type Fig6Options struct {
	// Sizes are the host populations to profile (the paper: 1e3, 1e4,
	// 1e5).
	Sizes []int
	// Rounds lets the network converge before sampling.
	Rounds int
	// MaxCounter truncates the CDF's x axis (the paper plots 0-12).
	MaxCounter int
	Seed       uint64
}

// DefaultFig6 matches the paper at laptop scale.
func DefaultFig6() Fig6Options {
	return Fig6Options{Sizes: []int{1000, 10000}, Rounds: 30, MaxCounter: 12, Seed: 1}
}

// FullFig6 matches the paper exactly.
func FullFig6() Fig6Options {
	return Fig6Options{Sizes: []int{1000, 10000, 100000}, Rounds: 30, MaxCounter: 12, Seed: 1}
}

// Fig6Result holds one network size's counter CDFs, one per bit index.
type Fig6Result struct {
	Size int
	// PerBit[k] is the CDF of finite counter values for bit k over all
	// hosts and bins.
	PerBit []*stats.CDF
}

// Fig6 reproduces Figure 6: the distribution of Count-Sketch-Reset
// counter values per bit index in converged networks of several sizes.
// The paper's claims, checkable from the output: (1) the distribution
// for low-order bits is nearly independent of network size, and (2)
// counter values for bit k are bounded w.h.p. by a linear function of
// k — the cutoff f(k) = 7 + k/4.
func Fig6(opts Fig6Options) ([]Fig6Result, Result) {
	table := Result{
		Name:   "bit counter distribution (p99 per bit vs cutoff f(k)=7+k/4)",
		XLabel: "bit",
		YLabel: "counter value",
	}
	var out []Fig6Result
	for _, n := range opts.Sizes {
		fr := fig6Once(n, opts)
		out = append(out, fr)

		series := stats.Series{Label: fmt.Sprintf("p99 n=%d", n)}
		for k, cdf := range fr.PerBit {
			if cdf.Total() == 0 {
				continue
			}
			p99 := percentileOfCDF(cdf, 0.99)
			series.Append(float64(k), float64(p99))
		}
		table.Series = append(table.Series, series)
	}
	cutoff := stats.Series{Label: "f(k)=7+k/4"}
	maxBit := 0
	for _, fr := range out {
		if len(fr.PerBit) > maxBit {
			maxBit = len(fr.PerBit)
		}
	}
	for k := 0; k < maxBit; k++ {
		cutoff.Append(float64(k), sketchreset.DefaultCutoff(k))
	}
	table.Series = append(table.Series, cutoff)
	table.Notef("a p99 at or below f(k) means the cutoff keeps sourced bits alive w.h.p.")
	return out, table
}

func fig6Once(n int, opts Fig6Options) Fig6Result {
	environment := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	params := sketch.DefaultParams
	for i := range agents {
		agents[i] = sketchreset.New(gossip.NodeID(i), sketchreset.Config{
			Params:      params,
			Identifiers: 1,
			NoDecay:     true, // measure raw propagation ages
		})
	}
	engine, err := gossip.NewEngine(gossip.Config{
		Env: environment, Agents: agents, Model: gossip.PushPull, Seed: opts.Seed,
	})
	if err != nil {
		panic(err)
	}
	engine.Run(opts.Rounds)

	// Sample counters: for each bit index, the finite ages across all
	// hosts and bins.
	perBit := make([]*stats.CDF, params.Levels)
	for k := range perBit {
		perBit[k] = stats.NewCDF()
	}
	maxInteresting := 0
	for i := 0; i < n; i++ {
		node := agents[i].(*sketchreset.Node)
		for bin := 0; bin < params.Bins; bin++ {
			for k := 0; k < params.Levels; k++ {
				c := node.CounterAt(bin, k)
				if c == sketchreset.Never {
					continue
				}
				perBit[k].Observe(int(c))
				if k > maxInteresting {
					maxInteresting = k
				}
			}
		}
	}
	return Fig6Result{Size: n, PerBit: perBit[:maxInteresting+1]}
}

// percentileOfCDF returns the smallest value v with P[X<=v] >= q.
func percentileOfCDF(c *stats.CDF, q float64) int {
	pts := c.Points()
	for _, p := range pts {
		if p.P >= q {
			return p.Value
		}
	}
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].Value
}

// FitCutoff derives an empirical linear cutoff a + k/b from Figure 6
// data by least-squares over the per-bit p99 values, reproducing the
// paper's "derived experimentally" f(k). Returns the intercept and
// inverse slope (the paper: a≈7, b≈4).
func FitCutoff(frs []Fig6Result, q float64) (intercept, invSlope float64) {
	var xs, ys []float64
	for _, fr := range frs {
		for k, cdf := range fr.PerBit {
			if cdf.Total() < 100 {
				continue // too few observations for a stable percentile
			}
			xs = append(xs, float64(k))
			ys = append(ys, float64(percentileOfCDF(cdf, q)))
		}
	}
	if len(xs) < 2 {
		return 0, math.Inf(1)
	}
	mx, my := stats.Mean(xs), stats.Mean(ys)
	var num, den float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	slope := num / den
	if slope == 0 {
		return my, math.Inf(1)
	}
	return my - slope*mx, 1 / slope
}
