package experiments

import (
	"strings"
	"testing"
)

func TestAblationBandwidth(t *testing.T) {
	res := AblationBandwidth(1000, 1)
	if len(res.Series) != 1 || res.Series[0].Len() != 6 {
		t.Fatalf("series shape wrong: %+v", res.Series)
	}
	y := res.Series[0].Y
	mass := y[0]      // push-sum-revert
	sketchRLE := y[4] // count-sketch-reset RLE
	sketchRaw := y[5] // count-sketch-reset raw
	if mass != 16 {
		t.Errorf("mass payload %v bytes, want 16", mass)
	}
	// §IV-B: the sketch costs orders of magnitude more than the mass
	// vector, even after RLE.
	if sketchRLE < 20*mass {
		t.Errorf("sketch RLE %v bytes not ≫ mass %v", sketchRLE, mass)
	}
	if sketchRLE > sketchRaw {
		t.Errorf("RLE %v larger than raw %v", sketchRLE, sketchRaw)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "ratio") {
			found = true
		}
	}
	if !found {
		t.Error("no ratio note")
	}
}
