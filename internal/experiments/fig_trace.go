package experiments

import (
	"fmt"
	"math"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/metrics"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/stats"
	"dynagg/internal/trace"
)

// TraceDataset selects one of the three synthetic Haggle-like traces
// (the CRAWDAD substitution documented in DESIGN.md §4).
func TraceDataset(i int) trace.GenParams {
	switch i {
	case 1:
		return trace.Dataset1()
	case 2:
		return trace.Dataset2()
	case 3:
		return trace.Dataset3()
	default:
		panic(fmt.Sprintf("experiments: no trace dataset %d (have 1-3)", i))
	}
}

// Fig11Avg reproduces the left column of Figure 11: dynamic averaging
// over a contact trace, error measured against each host's own
// 10-minute connectivity group, sampled hourly. One series per λ plus
// the average group size.
func Fig11Avg(dataset int, seed uint64) Result {
	params := TraceDataset(dataset)
	tr := trace.Generate(params)
	res := Result{
		Name: fmt.Sprintf("dynamic average on %s (%d devices, %.0f h)",
			params.Name, tr.N, tr.Duration.Hours()),
		XLabel: "hour",
		YLabel: "stddev from group average",
	}
	res.Notef("trace is synthetic (CRAWDAD substitution, see DESIGN.md)")

	var sizeSeries *stats.Series
	for i, lambda := range TraceLambdas {
		tenv := env.NewTraceEnv(tr, 0, 0)
		values := uniformValues(tr.N, seed+101)

		cfg := pushsumrevert.Config{Lambda: lambda, PushPull: true}
		agents := make([]gossip.Agent, tr.N)
		for j := range agents {
			agents[j] = pushsumrevert.New(gossip.NodeID(j), values[j], cfg)
		}
		series := stats.Series{Label: fmt.Sprintf("λ=%.4f", lambda)}
		var size stats.Series
		size.Label = "avg group size"
		perHour := int(math.Round(float64(3600) / tenv.Interval().Seconds()))
		sizePtr := &size
		if i != 0 {
			sizePtr = nil // record the size series only once
		}
		engine, err := gossip.NewEngine(gossip.Config{
			Env: tenv, Agents: agents, Model: gossip.PushPull, Seed: seed,
			AfterRound: []gossip.Hook{
				metrics.GroupDeviationHook(&series, sizePtr, tenv, values, metrics.GroupAverage, perHour),
			},
		})
		if err != nil {
			panic(err)
		}
		engine.Run(tenv.Rounds())
		res.Series = append(res.Series, series)
		if i == 0 {
			sizeSeries = &size
		}
	}
	if sizeSeries != nil {
		res.Series = append(res.Series, *sizeSeries)
	}
	for i := range TraceLambdas {
		res.Notef("λ=%v: mean hourly stddev %.3f", TraceLambdas[i], stats.Mean(res.Series[i].Y))
	}
	return res
}

// Fig11Sum reproduces the right column of Figure 11: dynamic group
// size estimation over a contact trace with Count-Sketch-Reset. Each
// device registers 100 identifiers to sharpen the estimate on these
// tiny networks (the paper's adjustment). Three settings: reversion
// off (static sketch), on (cutoff 7+k/4) and slow (doubled cutoff).
func Fig11Sum(dataset int, seed uint64) Result {
	params := TraceDataset(dataset)
	tr := trace.Generate(params)
	res := Result{
		Name: fmt.Sprintf("dynamic size estimate on %s (%d devices, %.0f h)",
			params.Name, tr.N, tr.Duration.Hours()),
		XLabel: "hour",
		YLabel: "stddev from group size",
	}
	res.Notef("trace is synthetic (CRAWDAD substitution, see DESIGN.md)")
	res.Notef("each device registers 100 identifiers; estimates scaled back by 100")

	type mode struct {
		label   string
		noDecay bool
		cutoff  func(k int) float64
	}
	modes := []mode{
		{label: "reversion off", noDecay: true},
		{label: "reversion on", cutoff: sketchreset.DefaultCutoff},
		{label: "reversion slow", cutoff: func(k int) float64 { return 14 + float64(k)/2 }},
	}
	var sizeSeries *stats.Series
	for i, m := range modes {
		tenv := env.NewTraceEnv(tr, 0, 0)
		values := onesValues(tr.N)

		agents := make([]gossip.Agent, tr.N)
		for j := range agents {
			agents[j] = sketchreset.New(gossip.NodeID(j), sketchreset.Config{
				Params:      sketch.DefaultParams,
				Identifiers: 100,
				Scale:       100,
				Cutoff:      m.cutoff,
				NoDecay:     m.noDecay,
			})
		}
		series := stats.Series{Label: m.label}
		var size stats.Series
		size.Label = "avg group size"
		perHour := int(math.Round(float64(3600) / tenv.Interval().Seconds()))
		sizePtr := &size
		if i != 0 {
			sizePtr = nil
		}
		engine, err := gossip.NewEngine(gossip.Config{
			Env: tenv, Agents: agents, Model: gossip.PushPull, Seed: seed,
			AfterRound: []gossip.Hook{
				metrics.GroupDeviationHook(&series, sizePtr, tenv, values, metrics.GroupSize, perHour),
			},
		})
		if err != nil {
			panic(err)
		}
		engine.Run(tenv.Rounds())
		res.Series = append(res.Series, series)
		if i == 0 {
			sizeSeries = &size
		}
	}
	if sizeSeries != nil {
		res.Series = append(res.Series, *sizeSeries)
	}
	for i, m := range modes {
		res.Notef("%s: mean hourly stddev %.3f", m.label, stats.Mean(res.Series[i].Y))
	}
	return res
}
