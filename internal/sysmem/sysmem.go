// Package sysmem reports process memory ceilings for the benchmark
// pipeline: the N=1,000,000 engine runs track peak RSS alongside
// ns/round so BENCH_results.json records the memory wall, not just
// the time wall.
package sysmem

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// PeakRSSBytes returns the process's peak resident set size in bytes.
// On Linux it reads VmHWM from /proc/self/status (the kernel's
// high-water mark, which survives frees); elsewhere, or if the read
// fails, it falls back to the Go heap's reserved footprint
// (runtime.MemStats.HeapSys), a lower bound that still tracks the
// simulator's dominant cost — the state and message columns.
func PeakRSSBytes() int64 {
	if v, ok := procPeakRSS(); ok {
		return v
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapSys)
}

// procPeakRSS parses "VmHWM:  123456 kB" from /proc/self/status.
func procPeakRSS() (int64, bool) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb * 1024, true
	}
	return 0, false
}
