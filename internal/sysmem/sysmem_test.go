package sysmem

import "testing"

func TestPeakRSSBytesPositive(t *testing.T) {
	got := PeakRSSBytes()
	if got <= 0 {
		t.Fatalf("PeakRSSBytes() = %d, want > 0", got)
	}
	// A Go test process touches at least a megabyte; anything lower
	// means the parser picked up the wrong field or unit.
	if got < 1<<20 {
		t.Errorf("PeakRSSBytes() = %d, implausibly small for a live process", got)
	}
}

func TestPeakRSSMonotonic(t *testing.T) {
	before := PeakRSSBytes()
	// Touch a chunk of memory; the high-water mark must not decrease.
	buf := make([]byte, 8<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	after := PeakRSSBytes()
	if after < before {
		t.Errorf("peak RSS decreased: %d -> %d", before, after)
	}
	_ = buf[len(buf)-1]
}
