package trace

import (
	"strings"
	"testing"
	"time"
)

func TestReadContactsBasic(t *testing.T) {
	src := `
# CRAWDAD-style contact table: a b start end
1 2 0 100
1 3 50 150
2 3 200 300
`
	tr, err := ReadContacts("haggle-test", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "haggle-test" {
		t.Errorf("Name = %q", tr.Name)
	}
	if tr.N != 3 {
		t.Errorf("N = %d, want 3 (dense renumbering)", tr.N)
	}
	if tr.Duration != 300*time.Second {
		t.Errorf("Duration = %v, want 300s", tr.Duration)
	}
	if len(tr.Events) != 6 {
		t.Fatalf("%d events, want 6 (3 contacts × up+down)", len(tr.Events))
	}

	// Replay and spot-check connectivity.
	c := NewCursor(tr)
	c.AdvanceTo(60 * time.Second)
	if !c.Connected(0, 1) || !c.Connected(0, 2) {
		t.Error("expected device 0 connected to both 1 and 2 at t=60")
	}
	c.AdvanceTo(160 * time.Second)
	if c.Degree(0) != 0 {
		t.Errorf("device 0 degree %d at t=160, want 0", c.Degree(0))
	}
	c.AdvanceTo(250 * time.Second)
	if !c.Connected(1, 2) {
		t.Error("devices 1 and 2 not connected at t=250")
	}
}

func TestReadContactsMergesOverlaps(t *testing.T) {
	// Two overlapping sightings and one touching: a single link episode.
	src := "1 2 0 100\n1 2 50 120\n1 2 120 200\n"
	tr, err := ReadContacts("merge", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("%d events, want 2 (merged into one interval)", len(tr.Events))
	}
	if tr.Events[0].At != 0 || tr.Events[1].At != 200*time.Second {
		t.Errorf("merged interval = [%v, %v], want [0s, 200s]", tr.Events[0].At, tr.Events[1].At)
	}
}

func TestReadContactsZeroLength(t *testing.T) {
	src := "1 2 10 10\n"
	tr, err := ReadContacts("zero", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("%d events, want 2", len(tr.Events))
	}
	if !tr.Events[0].Up || tr.Events[1].Up {
		t.Error("zero-length contact must be up then down")
	}
}

func TestReadContactsIgnoresSelfAndExtras(t *testing.T) {
	src := "5 5 0 10\n1 2 0 10 0.5 extra fields here\n"
	tr, err := ReadContacts("extras", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != 2 || len(tr.Events) != 2 {
		t.Errorf("N=%d events=%d, want 2 and 2", tr.N, len(tr.Events))
	}
}

func TestReadContactsDenseRenumbering(t *testing.T) {
	// CRAWDAD numbers devices from 1 with gaps; ids must densify in
	// first-appearance order.
	src := "7 3 0 10\n3 99 20 30\n"
	tr, err := ReadContacts("renumber", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != 3 {
		t.Fatalf("N = %d, want 3", tr.N)
	}
	// 7→0, 3→1, 99→2: first contact links 0-1, second links 1-2.
	c := NewCursor(tr)
	c.AdvanceTo(5 * time.Second)
	if !c.Connected(0, 1) {
		t.Error("densified first pair not linked")
	}
	c.AdvanceTo(25 * time.Second)
	if !c.Connected(1, 2) {
		t.Error("densified second pair not linked")
	}
}

func TestReadContactsErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"too few fields", "1 2 30\n"},
		{"bad device", "x 2 0 10\n"},
		{"bad device b", "1 y 0 10\n"},
		{"bad start", "1 2 zz 10\n"},
		{"bad end", "1 2 0 ww\n"},
		{"end before start", "1 2 100 50\n"},
		{"negative start", "1 2 -5 10\n"},
		{"no devices", "# empty\n"},
		{"one device only", "3 3 0 10\n"},
	}
	for _, c := range cases {
		if _, err := ReadContacts(c.name, strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// A CRAWDAD import round-trips through the interchange format.
func TestReadContactsInterchangeRoundTrip(t *testing.T) {
	src := "1 2 0 100\n2 3 50 150\n1 3 75 80\n"
	tr, err := ReadContacts("roundtrip", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != tr.N || len(got.Events) != len(tr.Events) {
		t.Errorf("round trip changed shape: %d/%d events", len(got.Events), len(tr.Events))
	}
}
