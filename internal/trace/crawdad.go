// CRAWDAD import: the cambridge/haggle datasets the paper evaluates on
// are distributed as contact tables — one row per sighting, giving the
// two device ids and the start/end time of the contact. This file
// parses that shape into the package's event-stream Trace, so the real
// recordings can be dropped in for the synthetic generator whenever
// they are available.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ReadContacts parses a whitespace-separated contact table:
//
//	<device-a> <device-b> <start-seconds> <end-seconds> [ignored extras...]
//
// Lines starting with '#' and blank lines are skipped. Device ids may
// be arbitrary non-negative integers (CRAWDAD numbers devices from 1);
// they are densely renumbered from 0 in first-appearance order.
// Overlapping or touching contact intervals for the same pair are
// merged, since radios observing each other twice are still just one
// link. The resulting trace is validated before being returned.
func ReadContacts(name string, r io.Reader) (*Trace, error) {
	type interval struct {
		start, end float64
	}
	contacts := make(map[[2]int][]interval)
	remap := make(map[int]int)
	dense := func(raw int) int {
		if id, ok := remap[raw]; ok {
			return id
		}
		id := len(remap)
		remap[raw] = id
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	var maxEnd float64
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 4 {
			return nil, fmt.Errorf("trace: contacts line %d: want at least 4 fields, got %d", line, len(fields))
		}
		rawA, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: contacts line %d: device a: %v", line, err)
		}
		rawB, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: contacts line %d: device b: %v", line, err)
		}
		start, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: contacts line %d: start: %v", line, err)
		}
		end, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: contacts line %d: end: %v", line, err)
		}
		if rawA == rawB {
			continue // self-sightings are noise
		}
		if end < start {
			return nil, fmt.Errorf("trace: contacts line %d: end %v before start %v", line, end, start)
		}
		if start < 0 {
			return nil, fmt.Errorf("trace: contacts line %d: negative start %v", line, start)
		}
		a, b := dense(rawA), dense(rawB)
		if a > b {
			a, b = b, a
		}
		contacts[[2]int{a, b}] = append(contacts[[2]int{a, b}], interval{start, end})
		if end > maxEnd {
			maxEnd = end
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(remap) < 2 {
		return nil, fmt.Errorf("trace: contacts: fewer than 2 devices seen")
	}

	t := &Trace{
		Name:     name,
		N:        len(remap),
		Duration: time.Duration(maxEnd * float64(time.Second)),
	}
	for key, ivs := range contacts {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		// Merge overlapping/touching intervals.
		merged := ivs[:0]
		for _, iv := range ivs {
			if n := len(merged); n > 0 && iv.start <= merged[n-1].end {
				if iv.end > merged[n-1].end {
					merged[n-1].end = iv.end
				}
				continue
			}
			merged = append(merged, iv)
		}
		for _, iv := range merged {
			t.Events = append(t.Events,
				Event{At: time.Duration(iv.start * float64(time.Second)), A: key[0], B: key[1], Up: true},
				Event{At: time.Duration(iv.end * float64(time.Second)), A: key[0], B: key[1], Up: false},
			)
		}
	}
	// Stable global ordering: time, then pair, then up before down.
	// After interval merging a pair's intervals are disjoint, so two
	// same-pair events can only share a timestamp for a zero-length
	// contact — whose up must precede its down.
	sort.SliceStable(t.Events, func(i, j int) bool {
		ei, ej := t.Events[i], t.Events[j]
		if ei.At != ej.At {
			return ei.At < ej.At
		}
		if ei.A != ej.A {
			return ei.A < ej.A
		}
		if ei.B != ej.B {
			return ei.B < ej.B
		}
		return ei.Up && !ej.Up
	})
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: contacts did not form a valid trace: %w", err)
	}
	return t, nil
}
