package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleTrace() *Trace {
	h := time.Hour
	return &Trace{
		Name:     "sample",
		N:        4,
		Duration: 3 * h,
		Events: []Event{
			{At: 0, A: 0, B: 1, Up: true},
			{At: 10 * time.Minute, A: 2, B: 3, Up: true},
			{At: h, A: 0, B: 1, Up: false},
			{At: h, A: 1, B: 2, Up: true},
			{At: 2 * h, A: 2, B: 3, Up: false},
		},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Errorf("well-formed trace rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *Trace { return sampleTrace() }
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"zero devices", func(tr *Trace) { tr.N = 0 }},
		{"device out of range", func(tr *Trace) { tr.Events[0].B = 9 }},
		{"negative device", func(tr *Trace) { tr.Events[0].A = -1 }},
		{"non-canonical pair", func(tr *Trace) { tr.Events[0].A, tr.Events[0].B = 1, 0 }},
		{"self link", func(tr *Trace) { tr.Events[0].B = 0 }},
		{"time backwards", func(tr *Trace) { tr.Events[2].At = 0; tr.Events[1].At = time.Hour }},
		{"beyond duration", func(tr *Trace) { tr.Events[4].At = 5 * time.Hour }},
		{"double up", func(tr *Trace) { tr.Events[2].Up = true }},
		{"down before up", func(tr *Trace) { tr.Events[0].Up = false }},
	}
	for _, c := range cases {
		tr := base()
		c.mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestCursorReplay(t *testing.T) {
	tr := sampleTrace()
	c := NewCursor(tr)

	c.AdvanceTo(0)
	if !c.Connected(0, 1) || !c.Connected(1, 0) {
		t.Error("link 0-1 not up at t=0")
	}
	if c.Connected(2, 3) {
		t.Error("link 2-3 up before its event")
	}

	c.AdvanceTo(30 * time.Minute)
	if !c.Connected(2, 3) {
		t.Error("link 2-3 not up at t=30m")
	}
	if got := c.Degree(0); got != 1 {
		t.Errorf("Degree(0) = %d, want 1", got)
	}

	c.AdvanceTo(time.Hour)
	if c.Connected(0, 1) {
		t.Error("link 0-1 still up after its down event")
	}
	if !c.Connected(1, 2) {
		t.Error("link 1-2 not up at t=1h")
	}
	if nb := c.Neighbors(2); len(nb) != 2 || nb[0] != 1 || nb[1] != 3 {
		t.Errorf("Neighbors(2) = %v, want [1 3]", nb)
	}

	// Time never goes backwards.
	c.AdvanceTo(10 * time.Minute)
	if c.Now() != time.Hour {
		t.Errorf("Now = %v after backwards AdvanceTo, want 1h", c.Now())
	}

	c.AdvanceTo(3 * time.Hour)
	if !c.Done() {
		t.Error("cursor not Done at trace end")
	}
}

func TestCursorRecentEdges(t *testing.T) {
	tr := sampleTrace()
	c := NewCursor(tr)
	// At t=1h5m, link 0-1 went down at 1h (5m ago: within a 10m window),
	// 1-2 and 2-3 are still up.
	c.AdvanceTo(time.Hour + 5*time.Minute)
	edges := c.RecentEdges(10 * time.Minute)
	want := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	if len(edges) != len(want) {
		t.Fatalf("RecentEdges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("RecentEdges = %v, want %v", edges, want)
		}
	}
	// With a 2-minute window the 0-1 link has aged out.
	edges = c.RecentEdges(2 * time.Minute)
	if len(edges) != 2 || edges[0] != [2]int{1, 2} || edges[1] != [2]int{2, 3} {
		t.Errorf("RecentEdges(2m) = %v, want [[1 2] [2 3]]", edges)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.N != tr.N || got.Duration != tr.Duration {
		t.Errorf("header mismatch: %+v vs %+v", got, tr)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("event count %d, want %d", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"# devices 2\n# duration 100\nnot an event\n",
		"# devices 2\n# duration 100\n10 0 1 sideways\n",
		"# devices abc\n",
		"# duration xyz\n",
		// Structurally invalid after parse: device out of range.
		"# devices 2\n# duration 100\n10 0 5 up\n",
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReadSkipsBlanksAndUnknownHeaders(t *testing.T) {
	src := "# name t\n# devices 2\n# duration 100\n# color blue\n\n10 0 1 up\n"
	tr, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != 2 || len(tr.Events) != 1 {
		t.Errorf("parsed %+v", tr)
	}
}

// Generator output is always structurally valid and deterministic per
// seed.
func TestGenerateValidAndDeterministic(t *testing.T) {
	for _, params := range []GenParams{Dataset1(), Dataset2(), Dataset3()} {
		tr := Generate(params)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", params.Name, err)
		}
		if tr.N != params.N {
			t.Errorf("%s: N = %d, want %d", params.Name, tr.N, params.N)
		}
		wantDur := time.Duration(params.Days) * 24 * time.Hour
		if tr.Duration != wantDur {
			t.Errorf("%s: duration %v, want %v", params.Name, tr.Duration, wantDur)
		}
		if len(tr.Events) == 0 {
			t.Errorf("%s: no events", params.Name)
		}
		again := Generate(params)
		if len(again.Events) != len(tr.Events) {
			t.Errorf("%s: non-deterministic event count", params.Name)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p := Dataset1()
	a := Generate(p)
	p.Seed = 99
	b := Generate(p)
	if len(a.Events) == len(b.Events) {
		same := true
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGeneratePanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate with N=1 did not panic")
		}
	}()
	Generate(GenParams{N: 1, Days: 1})
}

// The conference preset must produce large gatherings (most devices in
// one group during sessions), the daily presets mostly small groups.
func TestGeneratorQualitativeShape(t *testing.T) {
	tr := Generate(Dataset3())
	c := NewCursor(tr)
	// 10:30 on day 1 is mid-session.
	c.AdvanceTo(10*time.Hour + 30*time.Minute)
	best := 0
	for i := 0; i < tr.N; i++ {
		if d := c.Degree(i); d > best {
			best = d
		}
	}
	if best < tr.N/2 {
		t.Errorf("conference session peak degree %d, want >= %d (a large gathering)", best, tr.N/2)
	}

	// 3:00 at night: everyone home, no links beyond stray encounters.
	c.AdvanceTo(27 * time.Hour)
	linked := 0
	for i := 0; i < tr.N; i++ {
		linked += c.Degree(i)
	}
	if linked > tr.N {
		t.Errorf("night connectivity too high: %d link-ends", linked)
	}
}

// Round-trip property on generated traces: Write then Read reproduces
// every event.
func TestGeneratorRoundTrip(t *testing.T) {
	prop := func(seed uint64) bool {
		p := Dataset1()
		p.Seed = seed
		p.Days = 1
		tr := Generate(p)
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.N != tr.N || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}
