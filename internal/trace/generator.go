// Synthetic contact-trace generation: the substitution for the
// CRAWDAD cambridge/haggle datasets (see DESIGN.md §4). The generator
// simulates people carrying wireless devices between places — homes,
// shared gathering spots, conference sessions — and records the link
// up/down events that co-location produces. The resulting traces have
// the properties that drive the paper's Figure 11: small transient
// groups most of the time, a day/night rhythm, and (for the conference
// preset) periods where most devices gather.
package trace

import (
	"fmt"
	"time"

	"dynagg/internal/xrand"
)

// GenParams configures the synthetic mobility model.
type GenParams struct {
	Name string
	// N is the device count.
	N int
	// Days is the trace length in 24-hour days.
	Days int
	// Step is the simulation tick; links change only at tick
	// boundaries. The paper's gossip interval is 30 s, so the default
	// matches it.
	Step time.Duration
	// Places is the number of shared gathering places.
	Places int
	// Communities partitions devices into social groups that prefer
	// the same places.
	Communities int
	// GoOutProb is the per-tick probability that a device at home
	// leaves for a place during waking hours.
	GoOutProb float64
	// MoveProb is the per-tick probability that a device at a place
	// moves to another place.
	MoveProb float64
	// ReturnProb is the per-tick probability that a device at a place
	// heads home.
	ReturnProb float64
	// EncounterProb is the per-tick probability of a one-tick chance
	// contact between a random device pair (corridor passings).
	EncounterProb float64
	// Conference switches to a session-driven schedule: during session
	// hours most devices co-locate in a single hall, between sessions
	// they scatter into small break groups.
	Conference bool
	// Seed drives the generator; equal seeds give equal traces.
	Seed uint64
}

// Dataset1 approximates the first Haggle daily-life trace: 9 devices
// over ~4 days.
func Dataset1() GenParams {
	return GenParams{
		Name: "synthetic-haggle-1", N: 9, Days: 4, Step: 30 * time.Second,
		Places: 3, Communities: 2,
		GoOutProb: 0.01, MoveProb: 0.002, ReturnProb: 0.003,
		EncounterProb: 0.02, Seed: 1,
	}
}

// Dataset2 approximates the second daily-life trace: 12 devices over
// ~5 days.
func Dataset2() GenParams {
	return GenParams{
		Name: "synthetic-haggle-2", N: 12, Days: 5, Step: 30 * time.Second,
		Places: 4, Communities: 3,
		GoOutProb: 0.01, MoveProb: 0.002, ReturnProb: 0.003,
		EncounterProb: 0.02, Seed: 2,
	}
}

// Dataset3 approximates the conference trace: 41 devices over ~3 days
// with session gatherings.
func Dataset3() GenParams {
	return GenParams{
		Name: "synthetic-haggle-3", N: 41, Days: 3, Step: 30 * time.Second,
		Places: 6, Communities: 5,
		GoOutProb: 0.01, MoveProb: 0.004, ReturnProb: 0.006,
		EncounterProb: 0.05, Conference: true, Seed: 3,
	}
}

// location encoding: home(i) = -1-i is unique per device; values >= 0
// are shared places.
const atHome = -1

// Generate produces a synthetic contact trace. The output always
// passes Validate.
func Generate(p GenParams) *Trace {
	if p.N <= 1 {
		panic(fmt.Sprintf("trace: Generate needs at least 2 devices, got %d", p.N))
	}
	if p.Step <= 0 {
		p.Step = 30 * time.Second
	}
	if p.Places <= 0 {
		p.Places = 3
	}
	if p.Communities <= 0 {
		p.Communities = 1
	}
	rng := xrand.New(p.Seed)
	dur := time.Duration(p.Days) * 24 * time.Hour
	steps := int(dur / p.Step)

	// Per-device state: current location and home community.
	loc := make([]int, p.N)
	community := make([]int, p.N)
	for i := range loc {
		loc[i] = atHome - i // distinct homes: no contacts at night
		community[i] = i % p.Communities
	}
	// Each community prefers one "anchor" place.
	anchor := make([]int, p.Communities)
	for c := range anchor {
		anchor[c] = c % p.Places
	}

	t := &Trace{Name: p.Name, N: p.N, Duration: dur}
	linked := make(map[[2]int]bool)    // current link state
	encounters := make(map[[2]int]int) // chance links -> expiry step

	for s := 0; s <= steps; s++ {
		now := time.Duration(s) * p.Step
		hour := int(now/time.Hour) % 24
		awake := hour >= 8 && hour < 23
		session := p.Conference && ((hour >= 9 && hour < 12) || (hour >= 14 && hour < 17))
		// Daily-life traces show a midday gathering (shared office,
		// lunch): devices drift toward a common place.
		meeting := !p.Conference && hour >= 12 && hour < 14

		// Move devices.
		for i := 0; i < p.N; i++ {
			switch {
			case meeting:
				if loc[i] != 0 && rng.Prob(0.03) {
					loc[i] = 0
				}
			case session:
				// Most devices converge on the session hall (place 0);
				// stragglers wander the break areas.
				if loc[i] != 0 && rng.Prob(0.05) {
					if rng.Prob(0.85) {
						loc[i] = 0
					} else {
						loc[i] = 1 + rng.Intn(p.Places-1)
					}
				}
			case !awake:
				// Night: drift home.
				if loc[i] >= 0 && rng.Prob(0.05) {
					loc[i] = atHome - i
				}
			case loc[i] < 0:
				// At home during the day: maybe go out, preferring the
				// community anchor.
				if rng.Prob(p.GoOutProb) {
					if rng.Prob(0.7) {
						loc[i] = anchor[community[i]]
					} else {
						loc[i] = rng.Intn(p.Places)
					}
				}
			default:
				// Out: maybe move, maybe go home.
				if rng.Prob(p.ReturnProb) {
					loc[i] = atHome - i
				} else if rng.Prob(p.MoveProb) {
					loc[i] = rng.Intn(p.Places)
				}
			}
		}

		// Chance encounters: short-lived random pair contacts.
		if rng.Prob(p.EncounterProb) {
			a := rng.Intn(p.N)
			b := rng.Intn(p.N)
			if a != b {
				if a > b {
					a, b = b, a
				}
				encounters[[2]int{a, b}] = s + 2 // lasts ~2 ticks
			}
		}
		for key, expiry := range encounters {
			if s >= expiry {
				delete(encounters, key)
			}
		}

		// Desired link set: co-located pairs plus active encounters.
		want := make(map[[2]int]bool, len(linked))
		for a := 0; a < p.N; a++ {
			if loc[a] < 0 {
				continue
			}
			for b := a + 1; b < p.N; b++ {
				if loc[b] == loc[a] {
					want[[2]int{a, b}] = true
				}
			}
		}
		for key := range encounters {
			want[key] = true
		}

		// Emit diffs. Iterate pairs in canonical order for determinism.
		for a := 0; a < p.N; a++ {
			for b := a + 1; b < p.N; b++ {
				key := [2]int{a, b}
				if want[key] && !linked[key] {
					t.Events = append(t.Events, Event{At: now, A: a, B: b, Up: true})
					linked[key] = true
				} else if !want[key] && linked[key] {
					t.Events = append(t.Events, Event{At: now, A: a, B: b, Up: false})
					delete(linked, key)
				}
			}
		}
	}
	return t
}
