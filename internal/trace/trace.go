// Package trace provides the wireless contact-trace substrate for the
// trace-driven gossip environment.
//
// The paper evaluates on the CRAWDAD cambridge/haggle datasets: three
// traces of Bluetooth sightings between 9, 12 and 41 iMote-carrying
// people, recorded over several days (two daily-life traces and one
// conference trace). Those recordings are not redistributable here, so
// this package supplies (a) the exact artifact the protocols consume —
// a time-ordered stream of symmetric link up/down events — with a
// reader and writer for a plain text interchange format, and (b) a
// synthetic generator (see generator.go) producing traces with the
// qualitative structure the paper's Figure 11 depends on: small
// transient groups, daily rhythm, and occasional large gatherings.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Event is one change in the device adjacency matrix: the link between
// devices A and B (A < B) comes up or goes down at time At after trace
// start.
type Event struct {
	At time.Duration
	A  int
	B  int
	Up bool
}

// Trace is a complete contact trace: N devices observed for Duration,
// with a time-ordered event stream. Links are undirected and the
// stream is well-formed: for each pair, ups and downs strictly
// alternate starting with an up.
type Trace struct {
	Name     string
	N        int
	Duration time.Duration
	Events   []Event
}

// Validate checks structural well-formedness: device ids in range,
// canonical pair order, non-decreasing timestamps, and alternating
// up/down per link starting with up.
func (t *Trace) Validate() error {
	if t.N <= 0 {
		return fmt.Errorf("trace %q: non-positive device count %d", t.Name, t.N)
	}
	up := make(map[[2]int]bool)
	var prev time.Duration
	for i, ev := range t.Events {
		if ev.A < 0 || ev.B < 0 || ev.A >= t.N || ev.B >= t.N {
			return fmt.Errorf("trace %q event %d: device out of range: %d-%d (N=%d)", t.Name, i, ev.A, ev.B, t.N)
		}
		if ev.A >= ev.B {
			return fmt.Errorf("trace %q event %d: non-canonical pair %d-%d (want A < B)", t.Name, i, ev.A, ev.B)
		}
		if ev.At < prev {
			return fmt.Errorf("trace %q event %d: time went backwards (%v after %v)", t.Name, i, ev.At, prev)
		}
		if ev.At > t.Duration {
			return fmt.Errorf("trace %q event %d: time %v beyond duration %v", t.Name, i, ev.At, t.Duration)
		}
		prev = ev.At
		key := [2]int{ev.A, ev.B}
		if up[key] == ev.Up {
			state := "down"
			if ev.Up {
				state = "up"
			}
			return fmt.Errorf("trace %q event %d: link %d-%d already %s", t.Name, i, ev.A, ev.B, state)
		}
		up[key] = ev.Up
	}
	return nil
}

// Cursor replays a trace, maintaining the live adjacency as simulated
// time advances. It also records, for every link, when it was last up,
// which the grouping layer uses for its sliding window.
type Cursor struct {
	trace *Trace
	next  int
	now   time.Duration
	adj   []map[int]bool           // current neighbors per device
	last  map[[2]int]time.Duration // link -> last time it was observed up
}

// NewCursor returns a cursor positioned at time zero.
func NewCursor(t *Trace) *Cursor {
	c := &Cursor{
		trace: t,
		adj:   make([]map[int]bool, t.N),
		last:  make(map[[2]int]time.Duration),
	}
	for i := range c.adj {
		c.adj[i] = make(map[int]bool)
	}
	return c
}

// Now returns the cursor's current time.
func (c *Cursor) Now() time.Duration { return c.now }

// TraceDuration returns the total duration of the underlying trace.
func (c *Cursor) TraceDuration() time.Duration { return c.trace.Duration }

// Done reports whether the cursor has consumed the whole trace.
func (c *Cursor) Done() bool {
	return c.now >= c.trace.Duration && c.next >= len(c.trace.Events)
}

// AdvanceTo applies all events at or before t. Time never moves
// backwards; earlier t is a no-op. Calling with t equal to the current
// time applies any not-yet-consumed events at exactly t (this matters
// at t=0, where links that exist from trace start must come up before
// the first gossip round).
func (c *Cursor) AdvanceTo(t time.Duration) {
	if t < c.now {
		return
	}
	c.now = t
	for c.next < len(c.trace.Events) && c.trace.Events[c.next].At <= t {
		ev := c.trace.Events[c.next]
		c.next++
		key := [2]int{ev.A, ev.B}
		if ev.Up {
			c.adj[ev.A][ev.B] = true
			c.adj[ev.B][ev.A] = true
			c.last[key] = ev.At
		} else {
			delete(c.adj[ev.A], ev.B)
			delete(c.adj[ev.B], ev.A)
			c.last[key] = ev.At // was up until now
		}
	}
	// Links still up extend their last-seen time to the present.
	for a := 0; a < c.trace.N; a++ {
		for b := range c.adj[a] {
			if a < b {
				c.last[[2]int{a, b}] = t
			}
		}
	}
}

// Neighbors returns the devices currently in range of device a, in
// ascending order.
func (c *Cursor) Neighbors(a int) []int {
	out := make([]int, 0, len(c.adj[a]))
	for b := range c.adj[a] {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// Connected reports whether devices a and b currently share a link.
func (c *Cursor) Connected(a, b int) bool { return c.adj[a][b] }

// Degree returns the number of current neighbors of device a.
func (c *Cursor) Degree(a int) int { return len(c.adj[a]) }

// RecentEdges returns all links that were up at any point within the
// window ending now (the paper's 10-minute "nearby" union), as
// canonical pairs.
func (c *Cursor) RecentEdges(window time.Duration) [][2]int {
	cutoff := c.now - window
	out := make([][2]int, 0, len(c.last))
	for key, at := range c.last {
		if at >= cutoff {
			out = append(out, key)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Write serializes the trace in the package's interchange format:
//
//	# name <name>
//	# devices <N>
//	# duration <seconds>
//	<seconds> <a> <b> up|down
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# name %s\n", strings.ReplaceAll(t.Name, "\n", " "))
	fmt.Fprintf(bw, "# devices %d\n", t.N)
	fmt.Fprintf(bw, "# duration %.0f\n", t.Duration.Seconds())
	for _, ev := range t.Events {
		state := "down"
		if ev.Up {
			state = "up"
		}
		fmt.Fprintf(bw, "%.0f %d %d %s\n", ev.At.Seconds(), ev.A, ev.B, state)
	}
	return bw.Flush()
}

// Read parses a trace in the interchange format written by Write.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(strings.TrimPrefix(text, "#"))
			if len(fields) < 2 {
				continue
			}
			switch fields[0] {
			case "name":
				t.Name = strings.Join(fields[1:], " ")
			case "devices":
				if _, err := fmt.Sscanf(fields[1], "%d", &t.N); err != nil {
					return nil, fmt.Errorf("trace: line %d: bad devices header: %v", line, err)
				}
			case "duration":
				var secs float64
				if _, err := fmt.Sscanf(fields[1], "%f", &secs); err != nil {
					return nil, fmt.Errorf("trace: line %d: bad duration header: %v", line, err)
				}
				t.Duration = time.Duration(secs * float64(time.Second))
			}
			continue
		}
		var secs float64
		var a, b int
		var state string
		if _, err := fmt.Sscanf(text, "%f %d %d %s", &secs, &a, &b, &state); err != nil {
			return nil, fmt.Errorf("trace: line %d: %q: %v", line, text, err)
		}
		if state != "up" && state != "down" {
			return nil, fmt.Errorf("trace: line %d: bad state %q", line, state)
		}
		t.Events = append(t.Events, Event{
			At: time.Duration(secs * float64(time.Second)),
			A:  a, B: b,
			Up: state == "up",
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
