// Package backoff is the one retry/pacing policy of the live stack:
// exponential growth with a cap, optional symmetric jitter, and
// context-aware sleeping. The TCP transport's reconnect schedule, the
// bootstrap announce retry, and the membership keepalive cadence all
// run on it — one tested implementation instead of three ad-hoc
// loops, and one place where jitter breaks the lockstep that turns a
// seed restart into a thundering herd of simultaneous re-announces.
package backoff

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"dynagg/internal/xrand"
)

// Policy declares a backoff schedule. The zero value is invalid
// (Min must be positive); the other fields default sensibly so the
// common cases read as one or two assignments:
//
//	Policy{Min: 20 * time.Millisecond, Max: 2 * time.Second}  // doubling reconnect
//	Policy{Min: time.Second, Factor: 1, Jitter: 0.25}         // jittered heartbeat cadence
type Policy struct {
	// Min is the first delay. Required.
	Min time.Duration
	// Max caps the grown delay (before jitter). 0 means Min — a
	// constant cadence.
	Max time.Duration
	// Factor is the per-attempt growth multiplier. 0 means 2
	// (doubling); 1 is a constant cadence.
	Factor float64
	// Jitter spreads each delay uniformly over [d·(1−J), d·(1+J)].
	// 0 is deterministic; values are clamped to [0, 1].
	Jitter float64
}

// Validate reports whether the policy is usable.
func (p Policy) Validate() error {
	if p.Min <= 0 {
		return fmt.Errorf("backoff: Min must be positive, got %v", p.Min)
	}
	if p.Max != 0 && p.Max < p.Min {
		return fmt.Errorf("backoff: Max %v below Min %v", p.Max, p.Min)
	}
	if p.Factor < 0 || (p.Factor > 0 && p.Factor < 1) {
		return fmt.Errorf("backoff: Factor must be 0 (default 2) or >= 1, got %v", p.Factor)
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		return fmt.Errorf("backoff: Jitter %v outside [0,1]", p.Jitter)
	}
	return nil
}

// Delay returns the un-jittered delay for the given attempt (0 is the
// first): min(Min·Factor^attempt, Max). It is pure — the jittered
// stateful walk lives on Backoff.
func (p Policy) Delay(attempt int) time.Duration {
	min, max, factor := p.normalize()
	d := float64(min)
	limit := float64(max)
	for i := 0; i < attempt; i++ {
		d *= factor
		if d >= limit {
			return max
		}
	}
	return time.Duration(d)
}

func (p Policy) normalize() (min, max time.Duration, factor float64) {
	min = p.Min
	max = p.Max
	if max == 0 {
		max = min
	}
	factor = p.Factor
	if factor == 0 {
		factor = 2
	}
	return min, max, factor
}

// clampJitter bounds the jitter fraction to [0, 1].
func (p Policy) clampJitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter > 1:
		return 1
	}
	return p.Jitter
}

// seedCounter differentiates generators created without an explicit
// seed, so that concurrent Backoffs inside one process do not jitter
// in lockstep either.
var seedCounter atomic.Uint64

// Backoff is the stateful walk over a Policy: each Next advances the
// attempt counter and returns the next (jittered) delay, Reset rewinds
// to the first. Not safe for concurrent use; each retry loop owns one.
type Backoff struct {
	p       Policy
	attempt int
	rng     *xrand.Rand
}

// New returns a Backoff whose jitter stream is seeded from the clock
// and a process-wide counter — distinct across processes and across
// instances, which is the point of jitter.
func New(p Policy) *Backoff {
	return NewSeeded(p, uint64(time.Now().UnixNano())+seedCounter.Add(1)<<32)
}

// NewSeeded returns a Backoff with a deterministic jitter stream, for
// tests and for deployments that want reproducible schedules.
func NewSeeded(p Policy, seed uint64) *Backoff {
	return &Backoff{p: p, rng: xrand.New(seed)}
}

// Next returns the delay to wait before the next attempt and advances
// the schedule.
func (b *Backoff) Next() time.Duration {
	d := b.p.Delay(b.attempt)
	b.attempt++
	if j := b.p.clampJitter(); j > 0 {
		// Symmetric: uniform over [d·(1−j), d·(1+j)].
		f := 1 + j*(2*b.rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

// Attempt returns how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// Reset rewinds the schedule to the first attempt, for retry loops
// that succeed and later fail again (a reconnect that held for a
// while should not resume at the cap).
func (b *Backoff) Reset() { b.attempt = 0 }

// Sleep waits out the next delay or returns early with the context's
// error.
func (b *Backoff) Sleep(ctx context.Context) error {
	t := time.NewTimer(b.Next())
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
