package backoff

import (
	"context"
	"testing"
	"time"
)

func TestPolicyDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Min: 20 * time.Millisecond, Max: 2 * time.Second}
	want := []time.Duration{
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		160 * time.Millisecond,
		320 * time.Millisecond,
		640 * time.Millisecond,
		1280 * time.Millisecond,
		2 * time.Second,
		2 * time.Second,
	}
	for attempt, w := range want {
		if got := p.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestPolicyConstantCadence(t *testing.T) {
	p := Policy{Min: time.Second, Factor: 1}
	for attempt := 0; attempt < 5; attempt++ {
		if got := p.Delay(attempt); got != time.Second {
			t.Errorf("Delay(%d) = %v, want 1s", attempt, got)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		ok   bool
	}{
		{"zero", Policy{}, false},
		{"min-only", Policy{Min: time.Millisecond}, true},
		{"max-below-min", Policy{Min: time.Second, Max: time.Millisecond}, false},
		{"fractional-factor", Policy{Min: time.Second, Factor: 0.5}, false},
		{"constant", Policy{Min: time.Second, Factor: 1}, true},
		{"jitter-over-one", Policy{Min: time.Second, Jitter: 1.5}, false},
		{"negative-jitter", Policy{Min: time.Second, Jitter: -0.1}, false},
		{"full", Policy{Min: time.Millisecond, Max: time.Second, Factor: 1.5, Jitter: 0.25}, true},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestJitterStaysInBand(t *testing.T) {
	p := Policy{Min: 100 * time.Millisecond, Factor: 1, Jitter: 0.25}
	b := NewSeeded(p, 7)
	lo := time.Duration(float64(p.Min) * 0.75)
	hi := time.Duration(float64(p.Min) * 1.25)
	var min, max time.Duration = hi, lo
	for i := 0; i < 1000; i++ {
		d := b.Next()
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	// The draws must actually spread: over 1000 samples the observed
	// band should cover most of the configured one.
	if spread := max - min; spread < (hi-lo)/2 {
		t.Errorf("jitter spread %v too narrow for band %v", spread, hi-lo)
	}
}

func TestJitterSeedsDiverge(t *testing.T) {
	p := Policy{Min: time.Second, Factor: 1, Jitter: 0.5}
	a, b := NewSeeded(p, 1), NewSeeded(p, 2)
	same := 0
	for i := 0; i < 32; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 32 {
		t.Fatal("two differently seeded backoffs produced identical schedules")
	}
}

func TestResetRewindsSchedule(t *testing.T) {
	b := NewSeeded(Policy{Min: 10 * time.Millisecond, Max: time.Second}, 3)
	first := b.Next()
	for i := 0; i < 5; i++ {
		b.Next()
	}
	if b.Attempt() != 6 {
		t.Fatalf("Attempt() = %d, want 6", b.Attempt())
	}
	b.Reset()
	if b.Attempt() != 0 {
		t.Fatalf("Attempt() after Reset = %d, want 0", b.Attempt())
	}
	// Jitter is 0, so the restarted schedule reproduces the first delay.
	if got := b.Next(); got != first {
		t.Errorf("first delay after Reset = %v, want %v", got, first)
	}
}

func TestSleepHonorsContext(t *testing.T) {
	b := New(Policy{Min: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Sleep(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Sleep returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancel")
	}
}

func TestSleepCompletes(t *testing.T) {
	b := New(Policy{Min: time.Millisecond})
	if err := b.Sleep(context.Background()); err != nil {
		t.Fatalf("Sleep = %v, want nil", err)
	}
}

func TestNextNeverNonPositive(t *testing.T) {
	// Full jitter on a tiny Min can round toward zero; the floor keeps
	// retry loops from spinning.
	b := NewSeeded(Policy{Min: 1, Factor: 1, Jitter: 1}, 11)
	for i := 0; i < 100; i++ {
		if d := b.Next(); d <= 0 {
			t.Fatalf("Next() = %v, want > 0", d)
		}
	}
}
