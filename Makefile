# Local development and CI run the exact same commands: the ci target
# below is what .github/workflows/ci.yml invokes.

GO ?= go

.PHONY: build test race bench fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke pass: compile and run every benchmark once so perf
# harness rot is caught on every push without paying full bench time.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build race bench
