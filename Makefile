# Local development and CI run the exact same commands: the ci target
# below is what .github/workflows/ci.yml invokes.

GO ?= go

.PHONY: build examples test race bench bench-json bench-1m bench-live-1m bench-gate bench-gateway bench-chaos bench-heal fmt vet vuln ci live-soak cluster-soak gateway-soak chaos-soak heal-soak fuzz-smoke doc-lint

build:
	$(GO) build ./...

# Example main packages compile as part of ci so example rot fails the
# build instead of surprising readers.
examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke pass: compile and run every benchmark once so perf
# harness rot is caught on every push without paying full bench time.
# -short skips the N=1,000,000 BenchmarkEngine block (see bench-1m).
bench:
	$(GO) test -short -bench=. -benchtime=1x -run='^$$' ./...

# Machine-readable benchmark snapshot: one pass of every benchmark with
# -benchmem, raw text kept for benchstat, JSON (via cmd/benchjson) for
# the per-PR perf-trajectory artifact. -short as in bench; bench-1m
# appends the million-host rows afterwards.
# No pipe on the go test line: a benchmark failure must fail the
# target, not vanish into tee's exit status.
bench-json:
	$(GO) test -short -bench=. -benchmem -benchtime=1x -run='^$$' ./... > BENCH_raw.txt || { cat BENCH_raw.txt >&2; exit 1; }
	@cat BENCH_raw.txt
	$(GO) run ./cmd/benchjson -o BENCH_results.json BENCH_raw.txt

# Million-host engine benchmark: the N=1,000,000 BenchmarkEngine
# configurations (classic AoS baseline plus columnar sequential and
# sharded, under BOTH gossip models — the push-pull rows exercise the
# pair-batch wave executor), one iteration each, peak RSS and
# msgs/round recorded via report metrics. Kept out of the smoke lanes
# by -short above; run deliberately (CI bench job, perf
# investigations). When a bench-json snapshot exists the 1M rows are
# merged into BENCH_results.json so one artifact carries the whole
# trajectory.
bench-1m:
	$(GO) test -bench='BenchmarkEngine/n=1000000' -benchmem -benchtime=1x -run='^$$' -timeout=30m ./internal/gossip > BENCH_1M_raw.txt || { cat BENCH_1M_raw.txt >&2; exit 1; }
	@cat BENCH_1M_raw.txt
	@if [ -f BENCH_raw.txt ]; then \
		cat BENCH_raw.txt BENCH_1M_raw.txt | $(GO) run ./cmd/benchjson -o BENCH_results.json; \
	else \
		$(GO) run ./cmd/benchjson -o BENCH_results.json BENCH_1M_raw.txt; \
	fi

# Million-host LIVE engine benchmark: the columnar population backend
# driving 1,000,000 wall-clock hosts over real loopback UDP sockets,
# batch-encoded datagrams end to end. -benchline emits a
# Benchmark-formatted row (ns/tick, msgs/s, peak-rss-bytes) that
# cmd/benchjson merges into BENCH_results.json next to the round-based
# engine rows, so the artifact records both the synchronous and the
# live million-host capability.
bench-live-1m:
	$(GO) run ./cmd/dynaggsim live -columnar -n 1000000 -transport=udp -benchline | tee BENCH_LIVE_raw.txt
	@files=BENCH_LIVE_raw.txt; \
	for f in BENCH_raw.txt BENCH_1M_raw.txt; do \
		if [ -f $$f ]; then files="$$f $$files"; fi; \
	done; \
	cat $$files | $(GO) run ./cmd/benchjson -o BENCH_results.json

# Perf-gate benchmark sample: the n=10000 BenchmarkEngine matrix at a
# fixed iteration count, six times, so cmd/benchgate has a multi-sample
# median on both sides of a PR. Fixed -benchtime=100x (not a time
# budget) keeps base and head measuring identical work, and 100
# iterations per sample is what makes the rows gate-eligible (benchgate
# exempts single-iteration rows as directional). The CI bench job runs
# this twice — once on the PR head, once on the merge base — and fails
# the build when the gate trips.
bench-gate:
	$(GO) test -bench='BenchmarkEngine/n=10000$$' -benchtime=100x -count=6 -run='^$$' -timeout=20m ./internal/gossip > BENCH_gate_raw.txt || { cat BENCH_gate_raw.txt >&2; exit 1; }
	@cat BENCH_gate_raw.txt
	$(GO) run ./cmd/benchjson -o BENCH_gate.json BENCH_gate_raw.txt

# Transport/live-engine soak: the concurrency-heavy tests (goroutine
# drivers, UDP readers, loss injection) twice under the race detector
# with a generous timeout, in their own CI lane so `make ci` stays
# fast. (internal/wire is single-threaded; its tests already run under
# race in `make ci` and its decoders get fuzz-smoke below.) The 'Live'
# pattern covers both population backends — the classic per-agent
# tests and the columnar batch-plane tests live side by side in the
# live package. The second line soaks the columnar parity suite — all
# 9 protocols × push/push-pull × workers 0/1/4, engine- and
# driver-level — under race, since the sharded columnar executors are
# the other concurrency-heavy surface.
live-soak:
	$(GO) test -race -count=2 -timeout 15m -run 'Live|Transport|Batch|Lossy|UDP' ./internal/gossip/live/...
	$(GO) test -race -count=2 -timeout 15m -run 'Columnar' ./internal/gossip ./internal/experiments

# Multi-process cluster soak: the three-OS-process TCP bootstrap
# example under the race detector (each member process is itself a
# race-built binary), then the TCP transport and bootstrap test
# surface — connection cache, reconnect, frame scanner, membership,
# span registration — twice under race. This is the lane that proves
# the stream transport's concurrency story end to end: real listeners,
# real dials, real process boundaries.
cluster-soak:
	$(GO) run -race ./examples/live_cluster
	$(GO) test -race -count=2 -timeout 10m -run 'TCP|Bootstrap|FrameScanner|Membership|Announce' ./internal/gossip/live/...

# Gateway soak (CI's gateway lane): the three-process-cluster +
# HTTP-gateway example with every process race-built, then the HTTP
# handler / observer-span / bootstrap-edge tests twice under race, then
# a 5-second closed-loop load smoke (TestLoadSmoke asserts >0
# successful reads, zero errors, and a clean shutdown).
gateway-soak:
	$(GO) run -race ./examples/gateway
	$(GO) test -race -count=2 -timeout 10m ./internal/gateway
	GATEWAY_LOAD_SECONDS=5 $(GO) test -race -timeout 5m -run 'TestLoadSmoke' -v ./internal/gateway

# Gateway benchmark rows: the in-process serving path (the ~100k+
# req/s acceptance number) and the loopback-socket path, merged into
# BENCH_results.json next to the engine rows when a snapshot exists.
# Unlike the smoke lanes this needs a real measurement window — a
# single iteration would report one request's reciprocal latency as
# req/s — so it runs the default 1s benchtime per row.
bench-gateway:
	$(GO) test -bench='BenchmarkGateway' -benchmem -run='^$$' -timeout=10m ./internal/gateway > BENCH_gateway_raw.txt || { cat BENCH_gateway_raw.txt >&2; exit 1; }
	@cat BENCH_gateway_raw.txt
	@files=BENCH_gateway_raw.txt; \
	for f in BENCH_raw.txt BENCH_1M_raw.txt BENCH_LIVE_raw.txt; do \
		if [ -f $$f ]; then files="$$f $$files"; fi; \
	done; \
	cat $$files | $(GO) run ./cmd/benchjson -o BENCH_results.json

# Chaos lane (CI's chaos job): the scenario engine's test matrix —
# determinism pinning, honest-audit/Byzantine-flagging, partition-heal
# convergence across protocol families, live transport fault
# injection — twice under race; then one seeded dynaggsim run per
# fault family so the CLI surface of each fault kind is exercised end
# to end. (The supervised multi-process scenario moved to heal-soak.)
chaos-soak:
	$(GO) test -race -count=2 -timeout 15m ./internal/chaos
	$(GO) run ./cmd/dynaggsim chaos -scenario=partition-heal -seed 1
	$(GO) run ./cmd/dynaggsim chaos -scenario=regional-outage -seed 1
	$(GO) run ./cmd/dynaggsim chaos -scenario=churn-storm -seed 1
	$(GO) run ./cmd/dynaggsim chaos -scenario=clock-skew -seed 1
	$(GO) run ./cmd/dynaggsim chaos -scenario=crash-restart -seed 1

# Heal lane (CI's heal job): the self-healing stack end to end. The
# failure detector, retry-policy, and supervisor test matrices twice
# under race — including the detector's false-positive table under
# clock skew and churn storms, and the supervisor's real
# kill/detect/respawn cycles over OS processes — then the supervised
# chaos_cluster example with every process race-built: partition heals
# and a member SIGKILLed mid-run is detected, respawned, and reclaims
# its span via Replace bootstrap with no launcher intervention, under
# a clean cluster-wide mass audit.
heal-soak:
	$(GO) test -race -count=2 -timeout 15m ./internal/backoff ./internal/gossip/live/health ./internal/supervise
	$(GO) run -race ./examples/chaos_cluster

# Heal latency rows: a supervised mini-cluster with a scripted chaos
# kill reports its mean detect/recover latencies (ms-to-detect,
# ms-to-recover), and the round-engine crash-restart scenario reports
# how many rounds the population needed to reabsorb the reset span —
# merged into BENCH_results.json next to the perf and damage rows so
# recovery-time regressions are tracked like speed regressions.
bench-heal:
	$(GO) run ./cmd/dynaggsim supervise -members=2 -kill-after=2s -kill=m1 -seed 1 -benchline | tee BENCH_heal_raw.txt
	$(GO) run ./cmd/dynaggsim chaos -scenario=crash-restart -seed 1 -benchline | tee -a BENCH_heal_raw.txt
	@files=BENCH_heal_raw.txt; \
	for f in BENCH_raw.txt BENCH_1M_raw.txt BENCH_LIVE_raw.txt BENCH_gateway_raw.txt BENCH_chaos_raw.txt; do \
		if [ -f $$f ]; then files="$$f $$files"; fi; \
	done; \
	cat $$files | $(GO) run ./cmd/benchjson -o BENCH_results.json

# Adversary damage rows: the lying-mass scenarios at 1% and 5%
# Byzantine fractions, recorded as Benchmark-formatted rows
# (max/final rel err, recovery round, audit violations) and merged
# into BENCH_results.json next to the perf rows — the artifact then
# tracks robustness regressions the same way it tracks speed.
bench-chaos:
	$(GO) run ./cmd/dynaggsim chaos -scenario=byzantine-lying-1 -seed 1 -benchline | tee BENCH_chaos_raw.txt
	$(GO) run ./cmd/dynaggsim chaos -scenario=byzantine-lying-5 -seed 1 -benchline | tee -a BENCH_chaos_raw.txt
	@files=BENCH_chaos_raw.txt; \
	for f in BENCH_raw.txt BENCH_1M_raw.txt BENCH_LIVE_raw.txt BENCH_gateway_raw.txt; do \
		if [ -f $$f ]; then files="$$f $$files"; fi; \
	done; \
	cat $$files | $(GO) run ./cmd/benchjson -o BENCH_results.json

# Documentation lint: every exported identifier in the contract
# packages must carry a doc comment (cmd/doclint), every relative link
# in README/docs must resolve, the README must stay a quickstart, and
# the gateway API reference's example payloads must round-trip against
# the real handlers (TestGatewayAPIDocExamples).
doc-lint:
	$(GO) run ./cmd/doclint internal/backoff internal/chaos internal/gateway internal/gossip/live internal/gossip/live/health internal/gossip/live/transport internal/supervise internal/wire
	$(GO) test -run 'TestDocsLinksResolve|TestREADMEStaysQuickstart' .
	$(GO) test -run 'TestGatewayAPIDocExamples' ./internal/gateway

# Native Go fuzzing smoke pass: 10 seconds per wire decoder, enough to
# shake out the easy crashes on every push (a socket feeds these
# decoders attacker-controllable bytes). Seed corpora always run via
# `go test`; this adds fresh mutation time. FuzzDecodeFrame covers the
# TCP length-prefix framing; FuzzFrameScanner (in the transport
# package) feeds the stream reassembly path adversarially chunked
# frames and cross-checks it against the one-shot decoder.
FUZZ_TARGETS = FuzzDecodeCounters FuzzDecodeCountersMin FuzzDecodeCandidates FuzzDecodeHeader FuzzDecodeSketchBits FuzzDecodeMass FuzzDecodeFrame
TRANSPORT_FUZZ_TARGETS = FuzzFrameScanner
CHAOS_FUZZ_TARGETS = FuzzDecodeScenario
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t"; \
		$(GO) test ./internal/wire -run='^$$' -fuzz="$$t\$$" -fuzztime=10s || exit 1; \
	done
	@for t in $(TRANSPORT_FUZZ_TARGETS); do \
		echo "fuzz $$t"; \
		$(GO) test ./internal/gossip/live/transport -run='^$$' -fuzz="$$t\$$" -fuzztime=10s || exit 1; \
	done
	@for t in $(CHAOS_FUZZ_TARGETS); do \
		echo "fuzz $$t"; \
		$(GO) test ./internal/chaos -run='^$$' -fuzz="$$t\$$" -fuzztime=10s || exit 1; \
	done

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Vulnerability scan; a separate target because it downloads the
# scanner and vuln DB, so it needs network (CI runs it, offline
# development can skip it).
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

ci: fmt vet build examples race bench doc-lint
