// Package dynagg_bench holds the benchmark harness: one testing.B
// benchmark per figure of the paper's evaluation (plus the ablations
// from DESIGN.md). Run with
//
//	go test -bench=. -benchmem
//
// Populations are scaled down from the paper's 100,000 hosts so the
// full suite completes in minutes; pass -full via the dynaggsim CLI
// for paper-scale runs. Each benchmark regenerates the corresponding
// figure's data series end to end (workload, failure schedule,
// protocol, metrics), so ns/op measures the cost of a complete
// experiment at the benchmark scale.
//
// Every Scale-driven benchmark runs twice: workers=0 is the
// sequential round executor, workers=G a GOMAXPROCS-sized sharded
// pool. The two modes produce byte-identical series, so the pair
// tracks the parallel speedup across the whole figure suite. All
// protocols implement gossip.AppendEmitter, so these figures also
// exercise the zero-allocation message plane end to end — allocs/op
// here is dominated by experiment setup (agents, metrics), not by
// per-message traffic.
package dynagg_bench

import (
	"fmt"
	"runtime"
	"testing"

	"dynagg/internal/experiments"
)

// benchScale is the population used by the figure benchmarks. The
// curves keep their paper shape from roughly 2,000 hosts upward.
func benchScale() experiments.Scale {
	sc := experiments.Default()
	sc.N = 2000
	sc.Rounds = 40
	return sc
}

// benchBothModes runs the figure driver under the sequential executor
// and under a GOMAXPROCS-sized worker pool.
func benchBothModes(b *testing.B, driver func(experiments.Scale) experiments.Result) {
	for _, workers := range []int{0, runtime.GOMAXPROCS(0)} {
		sc := benchScale()
		sc.Workers = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = driver(sc)
			}
		})
	}
}

// BenchmarkFig6BitCounterCDF regenerates Figure 6: the distribution of
// Count-Sketch-Reset bit counters in fully converged networks, the
// data behind the f(k) = 7 + k/4 cutoff.
func BenchmarkFig6BitCounterCDF(b *testing.B) {
	opts := experiments.DefaultFig6()
	opts.Sizes = []int{1000}
	opts.Seed = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = experiments.Fig6(opts)
	}
}

// BenchmarkFig8UncorrelatedFailures regenerates Figure 8: dynamic
// averaging accuracy when half the hosts fail at random.
func BenchmarkFig8UncorrelatedFailures(b *testing.B) {
	benchBothModes(b, experiments.Fig8)
}

// BenchmarkFig9DynamicCounting regenerates Figure 9: Count-Sketch-Reset
// versus naive sketch counting across a massive failure.
func BenchmarkFig9DynamicCounting(b *testing.B) {
	benchBothModes(b, experiments.Fig9)
}

// BenchmarkFig10aCorrelatedFailures regenerates Figure 10a: basic
// Push-Sum-Revert under value-correlated failures.
func BenchmarkFig10aCorrelatedFailures(b *testing.B) {
	benchBothModes(b, experiments.Fig10a)
}

// BenchmarkFig10bFullTransfer regenerates Figure 10b: the Full-Transfer
// optimization under value-correlated failures.
func BenchmarkFig10bFullTransfer(b *testing.B) {
	benchBothModes(b, experiments.Fig10b)
}

// BenchmarkFig11TraceAverage regenerates Figure 11 (left column):
// trace-driven dynamic averaging on the synthetic Haggle-like dataset 1.
func BenchmarkFig11TraceAverage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig11Avg(1, 1)
	}
}

// BenchmarkFig11TraceSum regenerates Figure 11 (right column):
// trace-driven dynamic size estimation on dataset 1.
func BenchmarkFig11TraceSum(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig11Sum(1, 1)
	}
}

// BenchmarkAblationPushPull measures the push versus push/pull
// convergence comparison (§III-A, Karp et al.).
func BenchmarkAblationPushPull(b *testing.B) {
	benchBothModes(b, experiments.AblationPushPull)
}

// BenchmarkAblationAdaptive measures the indegree-scaled reversion
// ablation (§III-A).
func BenchmarkAblationAdaptive(b *testing.B) {
	benchBothModes(b, experiments.AblationAdaptive)
}

// BenchmarkAblationBins measures sketch accuracy versus bin count
// (§V-B, the 64-bin / 9.7% expectation).
func BenchmarkAblationBins(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationBins(5, 5000, 1)
	}
}

// BenchmarkAblationEpoch measures the epoch-reset baseline sensitivity
// study (§II-C).
func BenchmarkAblationEpoch(b *testing.B) {
	benchBothModes(b, experiments.AblationEpoch)
}

// BenchmarkAblationOverlay measures the TAG-style spanning-tree
// baseline under churn.
func BenchmarkAblationOverlay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationOverlay(30, 1)
	}
}

// BenchmarkAblationMoments measures the dynamic standard-deviation
// extension under correlated failures.
func BenchmarkAblationMoments(b *testing.B) {
	benchBothModes(b, experiments.AblationMoments)
}

// BenchmarkAblationExtremes measures the dynamic max extension under
// correlated failures.
func BenchmarkAblationExtremes(b *testing.B) {
	benchBothModes(b, experiments.AblationExtremes)
}

// BenchmarkAblationGridCutoff measures the spatial cutoff calibration
// sweep.
func BenchmarkAblationGridCutoff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationGridCutoff(16, 1)
	}
}

// BenchmarkAblationBandwidth measures the wire-bytes-per-message
// comparison across all protocols.
func BenchmarkAblationBandwidth(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationBandwidth(1000, 1)
	}
}

// BenchmarkAblationMobility measures dynamic averaging under
// random-waypoint mobility.
func BenchmarkAblationMobility(b *testing.B) {
	benchBothModes(b, experiments.AblationMobility)
}
