package dynagg_bench

// Documentation hygiene tests: the docs/ tree and README are part of
// the repo's contract, so their structural claims are enforced here —
// relative links must resolve, and the README must stay a quickstart
// (the deep material lives in docs/). The gateway API reference has a
// stronger check still: internal/gateway's TestGatewayAPIDocExamples
// executes its documented payloads against the real handlers.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns every markdown file the link check covers: the
// repo-root documents plus the whole docs/ tree.
func docFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, sub...)
	if len(sub) == 0 {
		t.Fatal("docs/ contains no markdown — the documentation tree is gone")
	}
	return files
}

// mdLinkRE matches inline markdown links [text](target).
var mdLinkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinksResolve fails when any relative markdown link in the
// root documents or docs/ points at a file that does not exist —
// moving or renaming a document without fixing its referrers breaks
// the build, not the reader.
func TestDocsLinksResolve(t *testing.T) {
	for _, file := range docFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLinkRE.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // drop fragment
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%s does not exist)", file, m[1], resolved)
			}
		}
	}
}

// TestREADMEStaysQuickstart pins the README split: the front page is a
// quickstart plus links into docs/, capped at half its pre-split
// length. Growing it past the cap means new material belongs in docs/.
func TestREADMEStaysQuickstart(t *testing.T) {
	raw, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	const maxLines = 198
	if n := strings.Count(string(raw), "\n"); n > maxLines {
		t.Errorf("README.md is %d lines, cap is %d — move the new material into docs/", n, maxLines)
	}
	for _, want := range []string{
		"docs/architecture.md", "docs/protocols.md",
		"docs/deployments.md", "docs/gateway-api.md",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("README.md no longer links %s", want)
		}
	}
}
