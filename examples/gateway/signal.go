package main

import (
	"context"
	"os/signal"
	"syscall"
)

// signalContext is a context cancelled by SIGINT/SIGTERM — how the
// launcher winds the worker members down.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
}
