// gateway demonstrates the observer-span query front end: a worker
// population split across THREE OS PROCESSES gossips the multi
// protocol (one shared size sketch + named Push-Sum-Revert aggregates)
// over TCP, and a gateway joins it as a fourth participant holding
// ZERO mass — an observer span above the counted population. The
// gateway converges to the population's estimates exactly like any
// host, so HTTP reads are answered from local state: no fan-out, no
// query flooding — the paper's point that after convergence the answer
// is already everywhere.
//
// Run it with:
//
//	go run ./examples/gateway [-load-duration 5s]
//
// The launcher spawns the three workers (who bootstrap membership from
// a static seed address, exactly as in examples/live_cluster), then
// joins as the observer, waits for reads to converge, registers a NEW
// aggregate through POST /aggregate/cpu and watches it propagate into
// the worker population and back, and finally runs a load smoke
// against the HTTP API before shutting everything down cleanly.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gateway"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/multi"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

const (
	workers = 48
	members = 3
	pace    = 4 * time.Millisecond
)

var names = []string{"load", "temp"}

func main() {
	role := flag.String("role", "launcher", "internal: launcher or member")
	span := flag.String("span", "", "internal: member host range lo:hi")
	listen := flag.String("listen", "127.0.0.1:0", "internal: member listen address")
	seeds := flag.String("seeds", "", "internal: bootstrap seed address list")
	loadDur := flag.Duration("load-duration", 2*time.Second, "load-smoke window against the gateway API")
	flag.Parse()
	var err error
	if *role == "member" {
		err = runMember(*span, *listen, *seeds)
	} else {
		err = runLauncher(*loadDur)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// reserveAddr picks a free loopback port for the seed member (see
// examples/live_cluster).
func reserveAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	return addr, ln.Close()
}

func runLauncher(loadDur time.Duration) error {
	seedAddr, err := reserveAddr()
	if err != nil {
		return err
	}

	// Spawn the worker members; they tick until we signal them down.
	procs := make([]*exec.Cmd, members)
	for i := 0; i < members; i++ {
		span := fmt.Sprintf("%d:%d", i*workers/members, (i+1)*workers/members)
		listen := "127.0.0.1:0"
		if i == 0 {
			listen = seedAddr
		}
		cmd := exec.Command(os.Args[0], "-role=member",
			"-span="+span, "-listen="+listen, "-seeds="+seedAddr)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning member %d: %w", i, err)
		}
		procs[i] = cmd
		go func(i int, sc *bufio.Scanner) {
			for sc.Scan() {
				fmt.Printf("member %d: %s\n", i, sc.Text())
			}
		}(i, bufio.NewScanner(stdout))
	}
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Signal(os.Interrupt)
			}
		}
		for i, p := range procs {
			if err := p.Wait(); err != nil {
				fmt.Printf("member %d exit: %v\n", i, err)
			}
		}
	}()

	// Join as the observer span and serve HTTP.
	gw, err := gateway.New(gateway.Config{
		Workers:    workers,
		Seeds:      []string{seedAddr},
		Aggregates: names,
		TickEvery:  pace,
		Seed:       99,
		Replace:    true,
	})
	if err != nil {
		return err
	}
	defer gw.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		cancel()
		gw.Wait()
	}()
	if err := gw.Start(ctx); err != nil {
		return fmt.Errorf("gateway bootstrap: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go gw.Serve(ctx, ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("gateway: observer span [%d,%d) joined via %s, serving %s\n",
		workers, workers+1, seedAddr, base)

	// Reads 503 until converged, then return the population's answers.
	for _, name := range names {
		body, err := waitConverged(base, name, gateway.DemoMean(name, workers))
		if err != nil {
			return err
		}
		fmt.Printf("GET /aggregate/%-5s → average %.3f (truth %.3f)  size %.1f  staleness %d ticks\n",
			name, body.Average, gateway.DemoMean(name, workers), body.Size, body.Staleness)
	}

	// Dynamic registration: POST a new name, watch it gossip out to the
	// workers (whose resolvers supply real values) and converge back.
	resp, err := http.Post(base+"/aggregate/cpu", "application/json", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	fmt.Printf("POST /aggregate/cpu → %d\n", resp.StatusCode)
	body, err := waitConverged(base, "cpu", gateway.DemoMean("cpu", workers))
	if err != nil {
		return err
	}
	fmt.Printf("GET /aggregate/cpu   → average %.3f (truth %.3f) after propagation\n",
		body.Average, gateway.DemoMean("cpu", workers))

	// Load smoke: closed-loop reads must all succeed while gossip keeps
	// ticking underneath.
	rep, err := gateway.RunLoad(ctx, gateway.LoadConfig{
		URL:      base + "/aggregate/load",
		Clients:  8,
		Duration: loadDur,
	})
	if err != nil {
		return err
	}
	fmt.Printf("load smoke: %s\n", rep)
	if rep.Requests == 0 {
		return fmt.Errorf("load smoke completed zero successful reads")
	}
	if rep.Errors > 0 {
		return fmt.Errorf("load smoke saw %d errors", rep.Errors)
	}
	fmt.Println("gateway example OK")
	return nil
}

// aggBody mirrors the gateway's GET /aggregate/{name} response.
type aggBody struct {
	Name      string  `json:"name"`
	Average   float64 `json:"average"`
	Sum       float64 `json:"sum"`
	Size      float64 `json:"size"`
	Tick      int     `json:"tick"`
	Staleness int     `json:"staleness_ticks"`
}

// waitConverged polls one aggregate until the gateway serves it within
// 30% (±0.5 floor) of the expected population mean.
func waitConverged(base, name string, want float64) (aggBody, error) {
	tol := 0.30 * math.Abs(want)
	if tol < 0.5 {
		tol = 0.5
	}
	deadline := time.Now().Add(30 * time.Second)
	var last aggBody
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/aggregate/" + name)
		if err != nil {
			return last, err
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&last); err != nil {
				resp.Body.Close()
				return last, err
			}
			resp.Body.Close()
			if math.Abs(last.Average-want) <= tol {
				return last, nil
			}
		} else {
			resp.Body.Close()
		}
		time.Sleep(25 * time.Millisecond)
	}
	return last, fmt.Errorf("aggregate %q never converged (last %+v, want ≈ %v)", name, last, want)
}

// runMember is one worker process: multi protocol over its span, env
// sized with one observer slot above the counted population, ticking
// until SIGINT.
func runMember(spanArg, listen, seeds string) error {
	var lo, hi int
	if _, err := fmt.Sscanf(spanArg, "%d:%d", &lo, &hi); err != nil {
		return fmt.Errorf("member: bad -span %q: %w", spanArg, err)
	}
	span := live.Span{Lo: gossip.NodeID(lo), Hi: gossip.NodeID(hi)}

	tr, err := transport.NewTCP(
		transport.WithGroups(transport.Group{Lo: span.Lo, Hi: span.Hi, Addr: listen}),
		transport.WithLocal(0),
	)
	if err != nil {
		return err
	}
	defer tr.Close()

	agents := make([]gossip.Agent, hi-lo)
	for i := range agents {
		id := span.Lo + gossip.NodeID(i)
		values := make(map[string]float64, len(names))
		for _, name := range names {
			values[name] = gateway.DemoValue(name, int(id))
		}
		node := multi.New(id, values,
			sketchreset.Config{Params: sketch.DefaultParams},
			pushsumrevert.Config{Lambda: gateway.DefaultLambda},
		)
		hostID := int(id)
		node.SetResolver(func(name string) (float64, bool) {
			return gateway.DemoValue(name, hostID), true
		})
		agents[i] = node
	}
	engine, err := live.New(live.Config{
		// One slot above the counted population: the gateway's observer
		// span, which peers gossip with but bootstrap does not wait for.
		Env:        env.NewUniform(workers + 1),
		Population: live.NewAgentPopulation(agents),
		Model:      gossip.Push, Seed: uint64(31 + lo), Ticks: live.Forever,
		TickEvery: pace, Workers: 4,
		Transport: tr, Span: span,
		Bootstrap: &live.Bootstrap{
			Seeds: strings.Split(seeds, ","), Span: span, Total: workers,
			Retry: 50 * time.Millisecond,
		},
	})
	if err != nil {
		return err
	}
	ctx, cancel := signalContext()
	defer cancel()
	fmt.Printf("span [%d,%d) up\n", lo, hi)
	if err := engine.Run(ctx); err != nil && err != context.Canceled {
		return err
	}
	fmt.Printf("span [%d,%d) down cleanly, sent %d dropped %d\n",
		lo, hi, engine.Sent(), engine.Dropped())
	return nil
}
