// Command mediaplayer plays out the paper's motivating scenario (§I): a
// proximity-aware social-networking application on wireless media
// players. Each device carries its owner's average song rating and
// wants a running estimate of the average rating among *nearby*
// devices — say, to pick ambient music matching the current crowd —
// without any infrastructure, as people walk in and out of range.
//
// The devices gossip every 30 simulated seconds over a synthetic
// Haggle-like contact trace (41 devices at a multi-day conference, the
// CRAWDAD cambridge/haggle substitution documented in DESIGN.md).
// Because the network splinters into transient groups, each device's
// estimate is judged against its own connectivity group's true average
// rather than a global one.
//
// Run it:
//
//	go run ./examples/mediaplayer
package main

import (
	"fmt"
	"math"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/groups"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/trace"
	"dynagg/internal/xrand"
)

func main() {
	const (
		lambda = 0.01
		seed   = 42
	)

	// A 41-device conference trace: large gatherings during sessions,
	// small clusters in between.
	tr := trace.Generate(trace.Dataset3())
	fmt.Printf("contact trace: %d devices over %.0f hours, %d link events\n",
		tr.N, tr.Duration.Hours(), len(tr.Events))

	// Song ratings: each person's library averages somewhere in [0,5].
	rng := xrand.New(seed)
	ratings := make([]float64, tr.N)
	for i := range ratings {
		ratings[i] = 1 + 4*rng.Float64()
	}

	tenv := env.NewTraceEnv(tr, 0, 0) // defaults: 30 s gossip, 10 min group window
	agents := make([]gossip.Agent, tr.N)
	for i := range agents {
		agents[i] = pushsumrevert.New(gossip.NodeID(i), ratings[i],
			pushsumrevert.Config{Lambda: lambda, PushPull: true})
	}
	engine, err := gossip.NewEngine(gossip.Config{
		Env: tenv, Agents: agents, Model: gossip.PushPull, Seed: seed,
	})
	if err != nil {
		panic(err)
	}

	rounds := tenv.Rounds()
	perHour := int(3600 / tenv.Interval().Seconds())
	fmt.Printf("gossiping every %v for %d rounds (%d per simulated hour)\n\n",
		tenv.Interval(), rounds, perHour)
	fmt.Printf("%5s  %7s  %12s  %14s\n", "hour", "groups", "avg grp size", "stddev vs grp")

	for r := 0; r < rounds; r++ {
		engine.Step()
		if (r+1)%(perHour*6) != 0 {
			continue
		}
		asg := tenv.Groups()
		dev := groupDeviation(engine, asg, ratings)
		fmt.Printf("%5d  %7d  %12.2f  %14.3f\n",
			(r+1)/perHour, asg.Groups(), asg.MeanGroupSizePerHost(), dev)
	}

	fmt.Println("\nEach device now holds a live estimate of its group's taste:")
	asg := tenv.Groups()
	for _, id := range []int{0, 10, 20, 40} {
		est, ok := engine.EstimateOf(gossip.NodeID(id))
		truth := groupAverage(asg, id, ratings)
		if !ok {
			fmt.Printf("  device %2d: (no estimate)\n", id)
			continue
		}
		fmt.Printf("  device %2d: estimates %.2f, its %d-device group truly averages %.2f\n",
			id, est, asg.SizeOf(asg.GroupOf(id)), truth)
	}
}

// groupDeviation is the RMS deviation of every device's estimate from
// its own connectivity group's true average rating.
func groupDeviation(e *gossip.Engine, asg groups.Assignment, ratings []float64) float64 {
	var sum float64
	n := 0
	for id := 0; id < asg.N(); id++ {
		est, ok := e.EstimateOf(gossip.NodeID(id))
		if !ok {
			continue
		}
		d := est - groupAverage(asg, id, ratings)
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

func groupAverage(asg groups.Assignment, id int, ratings []float64) float64 {
	members := asg.Members(asg.GroupOf(id))
	var sum float64
	for _, m := range members {
		sum += ratings[m]
	}
	return sum / float64(len(members))
}
