// Command quickstart is a 60-second tour of the dynamic in-network
// aggregation library.
//
// It builds a fully connected network of 1,000 hosts, each holding a
// uniform random value in [0, 100), and runs Push-Sum-Revert to
// maintain a network-wide average at every host. Twenty rounds in, the
// highest-valued half of the hosts fail silently — the worst case for
// static protocols, because the lost mass is correlated with the lost
// values — and the dynamic protocol pulls every survivor's estimate
// back to the new true average.
//
// Run it:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"dynagg/internal/core"
	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/metrics"
	"dynagg/internal/stats"
)

func main() {
	const (
		hosts  = 1000
		rounds = 50
		failAt = 20
		lambda = 0.1
	)

	// One data value per host: the paper's standard U[0,100) workload.
	values := core.UniformValues(hosts, 7)

	// The environment decides who can gossip with whom; the population
	// inside it tracks silent failures.
	e := env.NewUniform(hosts)

	// Ground truth over the *live* hosts only, recomputed on demand.
	truth := metrics.NewTruth(values, e.Population)

	net, err := core.NewAverage(core.AverageConfig{
		Common: core.Common{Env: e, Seed: 1, Model: gossip.PushPull},
		Values: values,
		Lambda: lambda,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("dynamic average over %d hosts, λ=%g\n", hosts, lambda)
	fmt.Printf("%6s  %12s  %12s  %10s\n", "round", "true avg", "est (host 0)", "stddev")

	report := func() {
		est, _ := net.EstimateOf(0)
		dev := stats.DeviationFrom(net.Estimates(), truth.Average())
		fmt.Printf("%6d  %12.4f  %12.4f  %10.4f\n", net.Round(), truth.Average(), est, dev)
	}

	for r := 0; r < rounds; r++ {
		if r == failAt {
			// Fail the highest-valued half of the population, silently:
			// no sign-off, no notification, exactly as when wireless
			// peers move out of range. The true average drops to ~25.
			failTopHalf(e.Population, values)
			fmt.Printf("--- round %d: highest-valued half failed silently (survivors: %d) ---\n",
				r, e.Population.AliveCount())
		}
		net.Step()
		if r%5 == 4 || r == failAt {
			report()
		}
	}

	fmt.Printf("\nfinal: true average %.4f, host-0 estimate %v\n",
		truth.Average(), firstEstimate(net))
	fmt.Printf("total protocol messages: %d (%.1f per host per round)\n",
		net.Messages(), float64(net.Messages())/float64(hosts*rounds))
}

func failTopHalf(pop *env.Population, values []float64) {
	order := make([]int, len(values))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return values[order[a]] > values[order[b]] })
	for _, id := range order[:len(order)/2] {
		pop.Fail(gossip.NodeID(id))
	}
}

func firstEstimate(net *core.Network) string {
	if v, ok := net.EstimateOf(0); ok {
		return fmt.Sprintf("%.4f", v)
	}
	return "(host 0 failed)"
}
