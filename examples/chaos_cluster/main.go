// chaos_cluster runs the healing-partition scenario from
// internal/chaos against a REAL self-healing cluster: one λ-reverting
// population split across three supervised OS processes on the TCP
// transport, where
//
//   - every member wraps its transport in chaos.Net with the same
//     chaos.Scenario, so a partition window cuts the three spans off
//     from each other (severing cached TCP connections, destroying
//     in-flight traffic) and then heals;
//   - the launcher is an internal/supervise Supervisor: it spawns the
//     members, serves as their bootstrap seed from an observer span,
//     and runs the health detector over their keepalive heartbeats.
//     The scenario's crashrestart fault is injected through the
//     supervisor's chaos hook (Kill) — and from there recovery is
//     ENTIRELY the supervisor's: the detector pronounces the silent
//     span dead, the supervisor respawns the member, and the fresh
//     incarnation reclaims the span via bootstrap Replace announces,
//     which the seed pushes to the survivors so their writers redial
//     the new port. No launcher choreography, no hand respawn.
//
// Each member reports its span's mean estimate and its mass census
// (endowment and final agent+in-flight totals). The launcher asserts
// the chaos-package verdicts: every span's estimate converges back to
// the population mean after the heal, the partition demonstrably
// destroyed traffic and severed links, the supervisor healed the
// killed member (≥1 restart, ≥1 completed heal, no member failed
// permanently), and chaos.LiveMassAudit judges the cluster-wide mass
// ratio clean — the reverting protocol has regenerated the crashed
// member's lost mass without moving ΣV/ΣW.
//
// Run it with:
//
//	go run ./examples/chaos_cluster
//
// (also exercised under -race by the repo's heal lane).
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"dynagg/internal/backoff"
	"dynagg/internal/chaos"
	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live"
	"dynagg/internal/gossip/live/health"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/supervise"
)

const (
	hosts     = 96
	members   = 3
	lambda    = 0.1
	pace      = 10 * time.Millisecond
	seed      = 7
	heartbeat = 100 * time.Millisecond
	// bootGrace pads the shared run deadline beyond Rounds*pace so
	// bootstrap time does not eat into the convergence window, and
	// estBoot is where the launcher guesses the members started
	// ticking when it converts the crashrestart fault's tick window
	// into a wall-clock kill time. Neither needs to be exact: the
	// fault schedule only has to land inside the run. healGrace then
	// extends the deadline past the kill by the detector's dead
	// threshold (20 heartbeats — sized for a single-CPU race-built
	// box, where merely starting one instrumented child process can
	// starve a sibling's announce loop for a second) plus respawn and
	// reconvergence time for the fresh incarnation.
	bootGrace = 2 * time.Second
	estBoot   = 400 * time.Millisecond
	healGrace = 5 * time.Second
)

// clusterScenario is the shared fault script: both the launcher and
// every member build it, so all sides of each cut agree on the
// schedule without exchanging a byte.
func clusterScenario() chaos.Scenario {
	return chaos.Scenario{
		Name:     "cluster-partition-heal",
		N:        hosts,
		Rounds:   220,
		Protocol: chaos.ProtoRevert,
		Lambda:   lambda,
		Faults: []chaos.Fault{
			// Three sides over 96 hosts: each member's 32-host span is
			// its own island until the window closes.
			{Kind: chaos.FaultPartition, Start: 20, End: 70, Parts: members},
			// Injected through the supervisor's Kill hook: the member
			// process owning [64,96) dies around this tick; detection
			// and the Replace respawn are the supervisor's own.
			{Kind: chaos.FaultCrashRestart, Start: 100, End: 101,
				Lo: (members - 1) * hosts / members, Hi: hosts},
		},
	}
}

func main() {
	role := flag.String("role", "launcher", "internal: launcher or member")
	span := flag.String("span", "", "internal: member host range lo:hi")
	seeds := flag.String("seeds", "", "internal: bootstrap seed address list")
	deadline := flag.Int64("deadline", 0, "internal: shared run deadline, unix nanoseconds")
	restart := flag.Bool("restart", false,
		"internal: restarted incarnation — bootstrap with Replace, fault windows already served")
	flag.Parse()
	var err error
	if *role == "member" {
		err = runMember(*span, *seeds, *deadline, *restart)
	} else {
		err = runLauncher()
	}
	if err != nil {
		log.Fatal(err)
	}
}

// value is host id's data value: a splitmix64 hash spread over
// [1, 100), so every span's local mean sits near the global mean and
// convergence failures can't hide behind skewed spans.
func value(id int) float64 {
	z := uint64(id)*0x9E3779B97F4A7C15 + 0x6A09E667F3BCC909
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return 1 + 99*float64(z>>11)/float64(1<<53)
}

func truth() float64 {
	var sum float64
	for i := 0; i < hosts; i++ {
		sum += value(i)
	}
	return sum / hosts
}

// report is one member's MEMBER line: its span, mean estimate, mass
// census (endowment w0/v0, final agents+in-flight w1/v1), and fault
// accounting.
type report struct {
	lo, hi         int
	mean           float64
	w0, v0, w1, v1 float64
	lost           int64
	kills          int64
	sent, dropped  int64
}

// capture is one incarnation's collected stdout; the exec.Cmd copier
// goroutine writes it, the launcher reads it after the supervisor's
// Run (which waits all processes out) has returned.
type capture struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *capture) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func runLauncher() error {
	scen := clusterScenario()
	if err := scen.Validate(); err != nil {
		return err
	}
	var part, crash chaos.Fault
	for _, f := range scen.Faults {
		switch f.Kind {
		case chaos.FaultPartition:
			part = f
		case chaos.FaultCrashRestart:
			crash = f
		}
	}

	runDeadline := time.Now().Add(bootGrace + time.Duration(scen.Rounds)*pace + healGrace)

	// One capture per incarnation, keyed name/incarnation: the killed
	// incarnation's partial output stays separate from its healer's.
	var mu sync.Mutex
	captures := map[string]*capture{}

	specs := make([]supervise.Member, members)
	for i := range specs {
		specs[i] = supervise.Member{
			Name: fmt.Sprintf("m%d", i),
			Lo:   gossip.NodeID(i * hosts / members),
			Hi:   gossip.NodeID((i + 1) * hosts / members),
		}
	}

	var sup *supervise.Supervisor
	spawn := func(m supervise.Member, incarnation int) (*exec.Cmd, error) {
		args := []string{"-role=member",
			fmt.Sprintf("-span=%d:%d", m.Lo, m.Hi),
			"-seeds=" + sup.SeedAddr(),
			fmt.Sprintf("-deadline=%d", runDeadline.UnixNano())}
		if incarnation > 0 {
			args = append(args, "-restart")
		}
		cmd := exec.Command(os.Args[0], args...)
		c := &capture{}
		mu.Lock()
		captures[fmt.Sprintf("%s/%d", m.Name, incarnation)] = c
		mu.Unlock()
		cmd.Stdout = c
		cmd.Stderr = os.Stderr
		return cmd, nil
	}

	sup, err := supervise.New(supervise.Config{
		Total:   hosts,
		Members: specs,
		Spawn:   spawn,
		// A 2s dead threshold (20 × 100ms heartbeats): far above the
		// announce cadence, because on a single-CPU machine a
		// race-built child process starting up starves its siblings'
		// announce loops for up to a second, and a live-but-starved
		// member must never be restarted.
		Detector:       health.Config{HeartbeatEvery: heartbeat, SuspectFactor: 10, DeadFactor: 20},
		RestartBackoff: backoff.Policy{Min: 20 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.25},
		Poll:           10 * time.Millisecond,
		RecoveryGrace:  10 * time.Second,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer sup.Close()

	// Inject the crashrestart fault through the supervisor's chaos
	// hook; everything after the kill is the supervisor's own.
	killErr := make(chan error, 1)
	go func() {
		time.Sleep(estBoot + time.Duration(crash.Start)*pace)
		killErr <- sup.Kill(specs[members-1].Name)
	}()

	ctx, cancel := context.WithDeadline(context.Background(), runDeadline.Add(bootGrace))
	defer cancel()
	if err := sup.Run(ctx); err != nil {
		return fmt.Errorf("supervisor: %w", err)
	}
	if err := <-killErr; err != nil {
		return fmt.Errorf("injecting crashrestart: %w", err)
	}

	// Harvest the MEMBER reports. The killed incarnation died by
	// SIGKILL mid-run and printed none; its replacement did.
	reports := make([]report, 0, members)
	mu.Lock()
	defer mu.Unlock()
	for key, c := range captures {
		sc := bufio.NewScanner(&c.buf)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "MEMBER ") {
				fmt.Println(line)
				continue
			}
			var r report
			if _, err := fmt.Sscanf(line, "MEMBER %d %d %g %g %g %g %g %d %d %d %d",
				&r.lo, &r.hi, &r.mean, &r.w0, &r.v0, &r.w1, &r.v1,
				&r.lost, &r.kills, &r.sent, &r.dropped); err != nil {
				return fmt.Errorf("%s: parsing report %q: %w", key, line, err)
			}
			reports = append(reports, r)
		}
	}
	if len(reports) != members {
		return fmt.Errorf("got %d MEMBER reports, want %d (one per span)", len(reports), members)
	}

	// Verdicts — the chaos-package trio plus the supervisor's own.
	stats := sup.Stats()
	want := truth()
	fmt.Printf("chaos scenario %q over TCP across %d supervised processes (n=%d, partition ticks [%d,%d), λ=%g):\n",
		scen.Name, members, hosts, part.Start, part.End, lambda)
	failed := false
	var w0, v0, w1, v1 float64
	var lost, kills int64
	for _, r := range reports {
		off := 100 * math.Abs(r.mean-want) / want
		fmt.Printf("  hosts [%2d,%2d)  mean %8.3f (%4.1f%% off)  lost %4d  kills %d  sent %d dropped %d\n",
			r.lo, r.hi, r.mean, off, r.lost, r.kills, r.sent, r.dropped)
		if off > 10 {
			failed = true
		}
		w0 += r.w0
		v0 += r.v0
		w1 += r.w1
		v1 += r.v1
		lost += r.lost
		kills += r.kills
	}
	fmt.Printf("  truth %.3f\n", want)
	for _, h := range stats.Heals {
		fmt.Printf("  heal: %s incarnation %d — detect %v, recover %v\n",
			h.Member, h.Incarnation, h.DetectLatency().Round(time.Millisecond), h.RecoverLatency().Round(time.Millisecond))
	}
	audit := chaos.LiveMassAudit(w0, v0, w1, v1, 0.1)
	fmt.Printf("  mass audit: ratio %.4f -> %.4f, drift %.3g (tol %g)\n",
		v0/w0, v1/w1, audit.MaxDrift, audit.Tolerance)
	switch {
	case failed:
		return errors.New("a span failed to converge to the population mean after the heal")
	case lost == 0:
		return errors.New("the partition destroyed no traffic — the fault never bit")
	case kills == 0:
		return errors.New("no TCP links were severed — chaos.Net did not reach the transport core")
	case stats.Restarts == 0 || len(stats.Heals) == 0:
		return fmt.Errorf("the supervisor never healed the killed member: %d restarts, %d heals",
			stats.Restarts, len(stats.Heals))
	case len(stats.Failed) != 0:
		return fmt.Errorf("members failed permanently under supervision: %v", stats.Failed)
	case audit.Violations != 0:
		return fmt.Errorf("mass audit FLAGGED an honest run (drift %.3g > tol %g)",
			audit.MaxDrift, audit.Tolerance)
	}
	fmt.Println("  audit clean; all spans reconverged after partition heal and supervised crash restart")
	return nil
}

// runMember is one cluster process: a span of λ-reverting agents on a
// TCP transport wrapped in the scenario's chaos.Net, heartbeating to
// the supervisor seed, running until the shared deadline and
// reporting estimate plus mass census.
func runMember(spanArg, seeds string, deadlineNano int64, restarted bool) error {
	var lo, hi int
	if _, err := fmt.Sscanf(spanArg, "%d:%d", &lo, &hi); err != nil {
		return fmt.Errorf("member: bad -span %q: %w", spanArg, err)
	}
	span := live.Span{Lo: gossip.NodeID(lo), Hi: gossip.NodeID(hi)}

	scen := clusterScenario()
	if restarted {
		// A rebooted box is not in the old partition: its local tick
		// clock restarts at zero, so keeping the windows would replay
		// the cut against healed peers. The incarnation still runs
		// under chaos.Net so the census plumbing is identical.
		scen.Faults = nil
	}

	tr, err := transport.NewTCP(
		transport.WithGroups(transport.Group{Lo: span.Lo, Hi: span.Hi, Addr: "127.0.0.1:0"}),
		transport.WithLocal(0),
		transport.WithReconnectBackoff(20*time.Millisecond, 200*time.Millisecond),
	)
	if err != nil {
		return err
	}
	defer tr.Close()
	cnet := chaos.NewNet(tr, hosts, scen)

	agents := make([]gossip.Agent, hi-lo)
	var w0, v0 float64
	for i := range agents {
		id := span.Lo + gossip.NodeID(i)
		v := value(int(id))
		agents[i] = pushsumrevert.New(id, v, pushsumrevert.Config{Lambda: lambda})
		w0++
		v0 += v
	}

	engine, err := live.New(live.Config{
		Env: env.NewUniform(hosts), Population: live.NewAgentPopulation(agents),
		Model: gossip.Push, Seed: seed, Ticks: live.Forever, TickEvery: pace,
		Workers: 4, Transport: cnet, Span: span,
		Bootstrap: &live.Bootstrap{
			Seeds: strings.Split(seeds, ","), Span: span, Total: hosts,
			Retry: 50 * time.Millisecond, ReAnnounce: heartbeat, Replace: restarted,
		},
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, deadlineNano))
	defer cancel()
	if err := engine.Run(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}

	var mean float64
	ests := engine.Estimates()
	for _, v := range ests {
		mean += v
	}
	if len(ests) > 0 {
		mean /= float64(len(ests))
	}

	// Census: agent state plus whatever the run left in this span's
	// queues (InFlightMass skips ids other members own — their queues
	// are nil here).
	w1, v1, ok := chaos.SumMass(agents)
	if !ok {
		return errors.New("member: agents lost mass semantics")
	}
	qw, qv := chaos.InFlightMass(cnet, hosts)
	w1 += qw
	v1 += qv

	var lost int64
	for _, l := range cnet.Lost() {
		lost += l.Count
	}
	fmt.Printf("MEMBER %d %d %g %g %g %g %g %d %d %d %d\n",
		lo, hi, mean, w0, v0, w1, v1, lost, tr.Kills(), engine.Sent(), engine.Dropped())
	return nil
}
