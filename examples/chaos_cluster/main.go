// chaos_cluster runs the healing-partition scenario from
// internal/chaos against a REAL cluster: one λ-reverting population
// split across three OS processes on the TCP transport, where
//
//   - every member wraps its transport in chaos.Net with the same
//     chaos.Scenario, so a partition window cuts the three spans off
//     from each other (severing cached TCP connections, destroying
//     in-flight traffic) and then heals;
//   - the launcher reads the scenario's crashrestart fault and
//     enforces it with the operating system: it SIGKILLs one member
//     mid-run — its agents and queued mass die with it — and spawns a
//     fresh incarnation that reclaims the span via bootstrap Replace
//     announces, which the seed pushes to the survivors so their
//     writers redial the new port.
//
// Each member reports its span's mean estimate and its mass census
// (endowment and final agent+in-flight totals). The launcher asserts
// the chaos-package verdicts: every span's estimate converges back to
// the population mean after the heal, the partition demonstrably
// destroyed traffic and severed links, and chaos.LiveMassAudit judges
// the cluster-wide mass ratio clean — the reverting protocol has
// regenerated the crashed member's lost mass without moving ΣV/ΣW.
//
// Run it with:
//
//	go run ./examples/chaos_cluster
//
// (also exercised under -race by the repo's example tests).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"dynagg/internal/chaos"
	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/pushsumrevert"
)

const (
	hosts   = 96
	members = 3
	lambda  = 0.1
	pace    = 10 * time.Millisecond
	seed    = 7
	// bootGrace pads the shared run deadline beyond Rounds*pace so
	// bootstrap time does not eat into the post-heal convergence
	// window, and estBoot is where the launcher guesses the members
	// started ticking when it converts the crashrestart fault's tick
	// window into a wall-clock kill time. Neither needs to be exact:
	// the fault schedule only has to land inside the run.
	bootGrace = 2 * time.Second
	estBoot   = 400 * time.Millisecond
)

// clusterScenario is the shared fault script: both the launcher and
// every member build it, so all sides of each cut agree on the
// schedule without exchanging a byte.
func clusterScenario() chaos.Scenario {
	return chaos.Scenario{
		Name:     "cluster-partition-heal",
		N:        hosts,
		Rounds:   220,
		Protocol: chaos.ProtoRevert,
		Lambda:   lambda,
		Faults: []chaos.Fault{
			// Three sides over 96 hosts: each member's 32-host span is
			// its own island until the window closes.
			{Kind: chaos.FaultPartition, Start: 20, End: 70, Parts: members},
			// Executed by the launcher, not chaos.Net: the member
			// process driving the last span is killed around this tick
			// and restarted with Replace bootstrap.
			{Kind: chaos.FaultCrashRestart, Start: 100, End: 101},
		},
	}
}

func main() {
	role := flag.String("role", "launcher", "internal: launcher or member")
	span := flag.String("span", "", "internal: member host range lo:hi")
	listen := flag.String("listen", "127.0.0.1:0", "internal: member listen address")
	seeds := flag.String("seeds", "", "internal: bootstrap seed address list")
	deadline := flag.Int64("deadline", 0, "internal: shared run deadline, unix nanoseconds")
	restart := flag.Bool("restart", false,
		"internal: restarted incarnation — bootstrap with Replace, fault windows already served")
	flag.Parse()
	var err error
	if *role == "member" {
		err = runMember(*span, *listen, *seeds, *deadline, *restart)
	} else {
		err = runLauncher()
	}
	if err != nil {
		log.Fatal(err)
	}
}

// value is host id's data value: a splitmix64 hash spread over
// [1, 100), so every span's local mean sits near the global mean and
// convergence failures can't hide behind skewed spans.
func value(id int) float64 {
	z := uint64(id)*0x9E3779B97F4A7C15 + 0x6A09E667F3BCC909
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return 1 + 99*float64(z>>11)/float64(1<<53)
}

func truth() float64 {
	var sum float64
	for i := 0; i < hosts; i++ {
		sum += value(i)
	}
	return sum / hosts
}

// reserveAddr picks a free loopback port for the seed member by
// binding an ephemeral listener and releasing it (same idiom as
// examples/live_cluster).
func reserveAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	return addr, ln.Close()
}

// report is one member's MEMBER line: its span, mean estimate, mass
// census (endowment w0/v0, final agents+in-flight w1/v1), and fault
// accounting.
type report struct {
	lo, hi         int
	mean           float64
	w0, v0, w1, v1 float64
	lost           int64
	kills          int64
	sent, dropped  int64
}

type memberProc struct {
	cmd *exec.Cmd
	out *bufio.Scanner
}

func runLauncher() error {
	scen := clusterScenario()
	if err := scen.Validate(); err != nil {
		return err
	}
	var part, crash chaos.Fault
	for _, f := range scen.Faults {
		switch f.Kind {
		case chaos.FaultPartition:
			part = f
		case chaos.FaultCrashRestart:
			crash = f
		}
	}

	seedAddr, err := reserveAddr()
	if err != nil {
		return err
	}
	runDeadline := time.Now().Add(bootGrace + time.Duration(scen.Rounds)*pace)

	spawn := func(i int, listen string, restart bool) (*memberProc, error) {
		args := []string{"-role=member",
			fmt.Sprintf("-span=%d:%d", i*hosts/members, (i+1)*hosts/members),
			"-listen=" + listen, "-seeds=" + seedAddr,
			fmt.Sprintf("-deadline=%d", runDeadline.UnixNano())}
		if restart {
			args = append(args, "-restart")
		}
		cmd := exec.Command(os.Args[0], args...)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("spawning member %d: %w", i, err)
		}
		return &memberProc{cmd: cmd, out: bufio.NewScanner(stdout)}, nil
	}

	procs := make([]*memberProc, members)
	for i := 0; i < members; i++ {
		listen := "127.0.0.1:0"
		if i == 0 {
			listen = seedAddr // the seed member serves the advertised address
		}
		if procs[i], err = spawn(i, listen, false); err != nil {
			return err
		}
	}

	// Enforce the crashrestart fault: kill the last member's process
	// around the scheduled tick, then bring up a replacement that
	// reclaims the span with a fresh endowment.
	crashed := members - 1
	type respawn struct {
		p   *memberProc
		err error
	}
	respawned := make(chan respawn, 1)
	go func() {
		time.Sleep(estBoot + time.Duration(crash.Start)*pace)
		if err := procs[crashed].cmd.Process.Kill(); err != nil {
			respawned <- respawn{err: fmt.Errorf("killing member %d: %w", crashed, err)}
			return
		}
		fmt.Printf("chaos: killed member %d (crashrestart tick %d); respawning with Replace bootstrap\n",
			crashed, crash.Start)
		p, err := spawn(crashed, "127.0.0.1:0", true)
		respawned <- respawn{p: p, err: err}
	}()

	// scan reads one incarnation's output to EOF, passing chatter
	// through, and returns its MEMBER report if it printed one.
	scan := func(p *memberProc) (report, bool, error) {
		var r report
		found := false
		for p.out.Scan() {
			line := p.out.Text()
			if !strings.HasPrefix(line, "MEMBER ") {
				fmt.Println(line)
				continue
			}
			if _, err := fmt.Sscanf(line, "MEMBER %d %d %g %g %g %g %g %d %d %d %d",
				&r.lo, &r.hi, &r.mean, &r.w0, &r.v0, &r.w1, &r.v1,
				&r.lost, &r.kills, &r.sent, &r.dropped); err != nil {
				return r, false, fmt.Errorf("parsing report %q: %w", line, err)
			}
			found = true
		}
		return r, found, nil
	}

	reports := make([]report, 0, members)
	for i := 0; i < members; i++ {
		r, found, err := scan(procs[i])
		if err != nil {
			return fmt.Errorf("member %d: %w", i, err)
		}
		waitErr := procs[i].cmd.Wait()
		if i == crashed {
			// The first incarnation died by SIGKILL mid-run: no report
			// and a signal exit are exactly what the fault prescribes.
			if found {
				return fmt.Errorf("member %d reported before its scheduled crash", i)
			}
			if waitErr == nil {
				return fmt.Errorf("member %d exited cleanly instead of crashing", i)
			}
			continue
		}
		if waitErr != nil {
			return fmt.Errorf("member %d: %w", i, waitErr)
		}
		if !found {
			return fmt.Errorf("member %d exited without a MEMBER report", i)
		}
		reports = append(reports, r)
	}
	rs := <-respawned
	if rs.err != nil {
		return rs.err
	}
	r, found, err := scan(rs.p)
	if err != nil {
		return fmt.Errorf("restarted member: %w", err)
	}
	if err := rs.p.cmd.Wait(); err != nil {
		return fmt.Errorf("restarted member: %w", err)
	}
	if !found {
		return fmt.Errorf("restarted member exited without a MEMBER report")
	}
	reports = append(reports, r)

	// Verdicts — the same three the chaos package's live tests apply.
	want := truth()
	fmt.Printf("chaos scenario %q over TCP across %d processes (n=%d, partition ticks [%d,%d), λ=%g):\n",
		scen.Name, members, hosts, part.Start, part.End, lambda)
	failed := false
	var w0, v0, w1, v1 float64
	var lost, kills int64
	for _, r := range reports {
		off := 100 * math.Abs(r.mean-want) / want
		fmt.Printf("  hosts [%2d,%2d)  mean %8.3f (%4.1f%% off)  lost %4d  kills %d  sent %d dropped %d\n",
			r.lo, r.hi, r.mean, off, r.lost, r.kills, r.sent, r.dropped)
		if off > 10 {
			failed = true
		}
		w0 += r.w0
		v0 += r.v0
		w1 += r.w1
		v1 += r.v1
		lost += r.lost
		kills += r.kills
	}
	fmt.Printf("  truth %.3f\n", want)
	audit := chaos.LiveMassAudit(w0, v0, w1, v1, 0.1)
	fmt.Printf("  mass audit: ratio %.4f -> %.4f, drift %.3g (tol %g)\n",
		v0/w0, v1/w1, audit.MaxDrift, audit.Tolerance)
	switch {
	case failed:
		return errors.New("a span failed to converge to the population mean after the heal")
	case lost == 0:
		return errors.New("the partition destroyed no traffic — the fault never bit")
	case kills == 0:
		return errors.New("no TCP links were severed — chaos.Net did not reach the transport core")
	case audit.Violations != 0:
		return fmt.Errorf("mass audit FLAGGED an honest run (drift %.3g > tol %g)",
			audit.MaxDrift, audit.Tolerance)
	}
	fmt.Println("  audit clean; all spans reconverged after partition heal and crash restart")
	return nil
}

// runMember is one cluster process: a span of λ-reverting agents on a
// TCP transport wrapped in the scenario's chaos.Net, running until the
// shared deadline and reporting estimate plus mass census.
func runMember(spanArg, listen, seeds string, deadlineNano int64, restarted bool) error {
	var lo, hi int
	if _, err := fmt.Sscanf(spanArg, "%d:%d", &lo, &hi); err != nil {
		return fmt.Errorf("member: bad -span %q: %w", spanArg, err)
	}
	span := live.Span{Lo: gossip.NodeID(lo), Hi: gossip.NodeID(hi)}

	scen := clusterScenario()
	if restarted {
		// A rebooted box is not in the old partition: its local tick
		// clock restarts at zero, so keeping the windows would replay
		// the cut against healed peers. The incarnation still runs
		// under chaos.Net so the census plumbing is identical.
		scen.Faults = nil
	}

	tr, err := transport.NewTCP(
		transport.WithGroups(transport.Group{Lo: span.Lo, Hi: span.Hi, Addr: listen}),
		transport.WithLocal(0),
		transport.WithReconnectBackoff(20*time.Millisecond, 200*time.Millisecond),
	)
	if err != nil {
		return err
	}
	defer tr.Close()
	cnet := chaos.NewNet(tr, hosts, scen)

	agents := make([]gossip.Agent, hi-lo)
	var w0, v0 float64
	for i := range agents {
		id := span.Lo + gossip.NodeID(i)
		v := value(int(id))
		agents[i] = pushsumrevert.New(id, v, pushsumrevert.Config{Lambda: lambda})
		w0++
		v0 += v
	}

	engine, err := live.New(live.Config{
		Env: env.NewUniform(hosts), Population: live.NewAgentPopulation(agents),
		Model: gossip.Push, Seed: seed, Ticks: live.Forever, TickEvery: pace,
		Workers: 4, Transport: cnet, Span: span,
		Bootstrap: &live.Bootstrap{
			Seeds: strings.Split(seeds, ","), Span: span, Total: hosts,
			Retry: 50 * time.Millisecond, Replace: restarted,
		},
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, deadlineNano))
	defer cancel()
	if err := engine.Run(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}

	var mean float64
	ests := engine.Estimates()
	for _, v := range ests {
		mean += v
	}
	if len(ests) > 0 {
		mean /= float64(len(ests))
	}

	// Census: agent state plus whatever the run left in this span's
	// queues (InFlightMass skips ids other members own — their queues
	// are nil here).
	w1, v1, ok := chaos.SumMass(agents)
	if !ok {
		return errors.New("member: agents lost mass semantics")
	}
	qw, qv := chaos.InFlightMass(cnet, hosts)
	w1 += qw
	v1 += qv

	var lost int64
	for _, l := range cnet.Lost() {
		lost += l.Count
	}
	tcp, _ := transport.AsTCP(cnet) // chaos.Net unwraps to the TCP core
	fmt.Printf("MEMBER %d %d %g %g %g %g %g %d %d %d %d\n",
		lo, hi, mean, w0, v0, w1, v1, lost, tcp.Kills(), engine.Sent(), engine.Dropped())
	return nil
}
