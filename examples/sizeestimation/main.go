// Command sizeestimation estimates how many devices are present —
// live, with no coordinator and no departure notifications — in two
// settings:
//
//  1. A round-driven run on a synthetic contact trace (12 commuting
//     devices), where the interesting quantity is each device's own
//     connectivity-group size: "how many of us are in range right now?"
//  2. A goroutine-per-node run of the same Count-Sketch-Reset protocol
//     on 500 concurrently ticking hosts, demonstrating that the
//     protocol does not depend on lock-step rounds: hosts tick
//     independently, messages are asynchronous, and the estimate still
//     converges to the population size.
//
// Run it:
//
//	go run ./examples/sizeestimation
package main

import (
	"context"
	"fmt"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/stats"
	"dynagg/internal/trace"
)

func main() {
	traceRun()
	fmt.Println()
	liveRun()
}

// traceRun drives Count-Sketch-Reset over a 12-device commuting trace
// and reports estimated versus true group size at one device.
func traceRun() {
	tr := trace.Generate(trace.Dataset2())
	tenv := env.NewTraceEnv(tr, 0, 0)

	fmt.Printf("trace run: %d devices over %.0f hours\n", tr.N, tr.Duration.Hours())

	agents := make([]gossip.Agent, tr.N)
	for i := range agents {
		// 100 identifiers per device sharpen the FM estimate on tiny
		// networks (the paper's Figure 11 adjustment); Scale divides
		// the estimate back down to devices.
		agents[i] = sketchreset.New(gossip.NodeID(i), sketchreset.Config{
			Params:      sketch.DefaultParams,
			Identifiers: 100,
			Scale:       100,
		})
	}
	engine, err := gossip.NewEngine(gossip.Config{
		Env: tenv, Agents: agents, Model: gossip.PushPull, Seed: 5,
	})
	if err != nil {
		panic(err)
	}

	perHour := int(3600 / tenv.Interval().Seconds())
	fmt.Printf("%5s  %15s  %12s\n", "hour", "device-3 est.", "true group")
	rounds := tenv.Rounds()
	for r := 0; r < rounds; r++ {
		engine.Step()
		if (r+1)%(perHour*12) != 0 {
			continue
		}
		asg := tenv.Groups()
		truth := asg.SizeOf(asg.GroupOf(3))
		if est, ok := engine.EstimateOf(3); ok {
			fmt.Printf("%5d  %15.1f  %12d\n", (r+1)/perHour, est, truth)
		} else {
			fmt.Printf("%5d  %15s  %12d\n", (r+1)/perHour, "(none)", truth)
		}
	}
}

// liveRun runs the same protocol with one goroutine per host — no
// rounds, no barrier — and checks the estimates it converges to.
func liveRun() {
	const (
		hosts = 500
		ticks = 60
	)
	fmt.Printf("live run: %d concurrent hosts × %d asynchronous ticks\n", hosts, ticks)

	e := env.NewUniform(hosts)
	agents := make([]gossip.Agent, hosts)
	for i := range agents {
		agents[i] = sketchreset.New(gossip.NodeID(i), sketchreset.Config{
			Params:      sketch.DefaultParams,
			Identifiers: 10,
			Scale:       10,
		})
	}
	engine, err := live.New(live.Config{
		Agents: agents,
		Env:    e,
		Model:  gossip.PushPull,
		Seed:   11,
		Ticks:  ticks,
	})
	if err != nil {
		panic(err)
	}
	if err := engine.Run(context.Background()); err != nil {
		panic(err)
	}

	ests := engine.Estimates()
	fmt.Printf("population truth: %d\n", hosts)
	fmt.Printf("estimates: mean %.1f, median %.1f, stddev %.1f (expected FM error ≈ %.1f%%)\n",
		stats.Mean(ests), stats.Quantile(ests, 0.5), stats.StdDev(ests),
		100*sketch.DefaultParams.ExpectedRelativeError())
	fmt.Printf("messages: %d exchanged, %d dropped by saturated inboxes\n",
		engine.Sent(), engine.Dropped())
}
