// Command roadhazard plays out the paper's vehicular scenario (§I): GPS
// units monitor car-mounted sensors for hazards such as slippery roads,
// and nearby units aggregate those reports in-network to decide whether
// to route around trouble — with no infrastructure and no reliable
// departure notifications.
//
// Vehicles sit on a road grid and can only talk to nearby vehicles;
// long "multi-hop" contacts are drawn with probability ∝ 1/d², the
// spatial-gossip trick (§IV) that keeps propagation times logarithmic.
// A patch of black ice is observed by 60 vehicles. Their reports are
// counted with Count-Sketch-Reset (dynamic summation by multiple
// insertions): every vehicle quickly learns how many reporters there
// are. Then the reporters drive away — silently, as vehicles do — and
// the count *decays back toward zero*, which a static sketch can never
// do.
//
// Run it:
//
//	go run ./examples/roadhazard
package main

import (
	"fmt"

	"dynagg/internal/core"
	"dynagg/internal/env"
	"dynagg/internal/gossip"
)

func main() {
	const (
		side      = 30 // 30×30 road grid, 900 vehicles
		reporters = 60
		departAt  = 30
		rounds    = 80
	)

	grid := env.NewGrid(side, side, side) // multi-hop walks up to the grid diameter
	n := grid.Size()

	// A cluster of vehicles near the grid centre observes the hazard.
	hazard := make([]float64, n)
	ids := centreCluster(grid, reporters)
	for _, id := range ids {
		hazard[id] = 1
	}

	// Spatial gossip propagates slower than uniform gossip, so the
	// bit-age cutoff must allow for the longer multi-hop distances
	// (§IV-A: "this cutoff is determined based on the gossip
	// propagation rate of the network"). A generous linear bound keeps
	// still-sourced bits alive while letting orphaned bits age out.
	gridCutoff := func(k int) float64 { return 25 + float64(k)/2 }

	net, err := core.NewSum(core.SumConfig{
		Common: core.Common{Env: grid, Seed: 99, Model: gossip.PushPull},
		Values: hazard,
		Method: core.MultipleInsertions,
		Cutoff: gridCutoff,
	})
	if err != nil {
		panic(err)
	}

	// The probe vehicle sits in a far corner of the grid.
	probe := gossip.NodeID(0)

	fmt.Printf("road grid %d×%d (%d vehicles), %d hazard reports near the centre\n",
		side, side, n, reporters)
	fmt.Println("(FM sketches are biased high at small counts; the shape — hold, then decay — is the point)")
	fmt.Printf("probe vehicle at the far corner; reporters depart after round %d\n\n", departAt)
	fmt.Printf("%6s  %18s  %12s\n", "round", "probe's estimate", "true reports")

	live := reporters
	for r := 0; r < rounds; r++ {
		if r == departAt {
			for _, id := range ids {
				grid.Population.Fail(id)
			}
			live = 0
			fmt.Printf("--- all %d reporters departed silently ---\n", reporters)
		}
		net.Step()
		if r%5 == 4 || r == departAt {
			est, ok := net.EstimateOf(probe)
			if !ok {
				fmt.Printf("%6d  %18s  %12d\n", net.Round(), "(none)", live)
				continue
			}
			fmt.Printf("%6d  %18.1f  %12d\n", net.Round(), est, live)
		}
	}

	est, _ := net.EstimateOf(probe)
	fmt.Printf("\nfinal probe estimate %.1f (true %d): the hazard aged out of the network\n", est, live)
}

// centreCluster returns the ids of the k vehicles nearest the grid
// centre, walking outward ring by ring.
func centreCluster(g *env.Grid, k int) []gossip.NodeID {
	cx, cy := g.Width()/2, g.Height()/2
	var out []gossip.NodeID
	for radius := 0; len(out) < k && radius <= g.Width(); radius++ {
		for y := cy - radius; y <= cy+radius && len(out) < k; y++ {
			for x := cx - radius; x <= cx+radius && len(out) < k; x++ {
				if x < 0 || y < 0 || x >= g.Width() || y >= g.Height() {
					continue
				}
				dx, dy := x-cx, y-cy
				if dx*dx+dy*dy > radius*radius {
					continue
				}
				id := gossip.NodeID(y*g.Width() + x)
				if !contains(out, id) {
					out = append(out, id)
				}
			}
		}
	}
	return out
}

func contains(ids []gossip.NodeID, id gossip.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
