// live_udp demonstrates the live engine as a real distributed system:
// one gossip population split across TWO OS PROCESSES, every
// cross-host message traveling as a wire-encoded UDP datagram over
// loopback. The parent process drives hosts [0, n/2), re-executes
// itself as a child driving [n/2, n), and the two exchange socket
// addresses through the child's stdio before running concurrently.
//
// Run it with:
//
//	go run ./examples/live_udp
//
// It executes Push-Sum (dynamic averaging) and Count-Sketch-Reset
// (dynamic counting) back to back, printing each process's view and
// the combined estimate against the truth. Estimates land within a
// few percent for Push-Sum and within the sketch's expected error for
// Count-Sketch-Reset — across a process boundary neither protocol can
// see.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"strings"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

const (
	hosts = 64
	ticks = 50
	pace  = 4 * time.Millisecond
	seed  = 7
)

func main() {
	role := flag.String("role", "parent", "internal: parent or child")
	proto := flag.String("proto", "", "internal: protocol for the child role")
	peer := flag.String("peer", "", "internal: parent group address for the child role")
	flag.Parse()
	if *role == "child" {
		if err := runChild(*proto, *peer); err != nil {
			log.Fatal(err)
		}
		return
	}
	for _, proto := range []string{"pushsum", "sketchreset"} {
		if err := runParent(proto); err != nil {
			log.Fatal(err)
		}
	}
}

// newTransport builds one process's UDP transport: two host groups,
// the given one bound locally on an ephemeral loopback port.
func newTransport(local int) (*transport.UDP, error) {
	groups := []transport.Group{{Lo: 0, Hi: hosts / 2}, {Lo: hosts / 2, Hi: hosts}}
	groups[local].Addr = "127.0.0.1:0"
	return transport.NewUDP(
		transport.WithGroups(groups...),
		transport.WithLocal(local),
	)
}

// newEngine assembles the live engine for one span of the population.
func newEngine(proto string, span live.Span, tr transport.Transport) (*live.Engine, error) {
	agents := make([]gossip.Agent, span.Hi-span.Lo)
	for i := range agents {
		id := span.Lo + gossip.NodeID(i)
		switch proto {
		case "pushsum":
			agents[i] = pushsum.NewAverage(id, float64(int(id)%100))
		case "sketchreset":
			agents[i] = sketchreset.New(id, sketchreset.Config{
				Params: sketch.Params{Bins: 32, Levels: 16}, Identifiers: 1,
			})
		default:
			return nil, fmt.Errorf("unknown protocol %q", proto)
		}
	}
	return live.New(live.Config{
		Env: env.NewUniform(hosts), Population: live.NewAgentPopulation(agents),
		Model: gossip.Push, Seed: seed, Ticks: ticks, TickEvery: pace,
		Transport: tr, Span: span,
	})
}

func truth(proto string) float64 {
	if proto == "sketchreset" {
		return hosts
	}
	var sum float64
	for i := 0; i < hosts; i++ {
		sum += float64(i % 100)
	}
	return sum / hosts
}

func mean(ests []float64) (float64, int) {
	var m float64
	for _, v := range ests {
		m += v
	}
	if len(ests) > 0 {
		m /= float64(len(ests))
	}
	return m, len(ests)
}

// runParent binds its half, spawns the child with the parent's socket
// address, learns the child's address from its stdout, releases it,
// and runs its own engine concurrently with the child process.
func runParent(proto string) error {
	tr, err := newTransport(0)
	if err != nil {
		return err
	}
	defer tr.Close()

	child := exec.Command(os.Args[0], "-role=child", "-proto="+proto, "-peer="+tr.GroupAddr(0))
	child.Stderr = os.Stderr
	stdin, err := child.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := child.StdoutPipe()
	if err != nil {
		return err
	}
	if err := child.Start(); err != nil {
		return fmt.Errorf("spawning child process: %w", err)
	}
	lines := bufio.NewScanner(stdout)

	// Handshake: the child binds an ephemeral port and reports it;
	// only then can the parent aim datagrams at the child's half.
	addr, err := expect(lines, "ADDR")
	if err != nil {
		return err
	}
	if err := tr.SetGroupAddr(1, addr); err != nil {
		return err
	}
	if _, err := io.WriteString(stdin, "GO\n"); err != nil {
		return err
	}

	engine, err := newEngine(proto, live.Span{Lo: 0, Hi: hosts / 2}, tr)
	if err != nil {
		return err
	}
	if err := engine.Run(context.Background()); err != nil {
		return err
	}
	meanA, countA := mean(engine.Estimates())

	report, err := expect(lines, "MEAN")
	if err != nil {
		return err
	}
	var meanB float64
	var countB int
	if _, err := fmt.Sscanf(report, "%g %d", &meanB, &countB); err != nil {
		return fmt.Errorf("parsing child report %q: %w", report, err)
	}
	if err := child.Wait(); err != nil {
		return fmt.Errorf("child process: %w", err)
	}

	combined := (meanA*float64(countA) + meanB*float64(countB)) / float64(countA+countB)
	want := truth(proto)
	fmt.Printf("%s over UDP across two processes (n=%d, %d ticks @ %v):\n", proto, hosts, ticks, pace)
	fmt.Printf("  parent  pid %-6d hosts [0,%d)  mean %8.3f   sent %d dropped %d\n",
		os.Getpid(), hosts/2, meanA, engine.Sent(), engine.Dropped())
	fmt.Printf("  child   pid %-6d hosts [%d,%d) mean %8.3f\n",
		child.Process.Pid, hosts/2, hosts, meanB)
	fmt.Printf("  combined mean %.3f, truth %.3f (%.1f%% off)\n\n",
		combined, want, 100*abs(combined-want)/want)
	return nil
}

// runChild is the other half of the population: bind, report the
// socket address, wait for the parent's release, run, report results.
func runChild(proto, peer string) error {
	tr, err := newTransport(1)
	if err != nil {
		return err
	}
	defer tr.Close()
	if err := tr.SetGroupAddr(0, peer); err != nil {
		return err
	}
	fmt.Printf("ADDR %s\n", tr.GroupAddr(1))

	release := bufio.NewScanner(os.Stdin)
	if !release.Scan() || release.Text() != "GO" {
		return fmt.Errorf("child: expected GO on stdin, got %q", release.Text())
	}

	engine, err := newEngine(proto, live.Span{Lo: hosts / 2, Hi: hosts}, tr)
	if err != nil {
		return err
	}
	if err := engine.Run(context.Background()); err != nil {
		return err
	}
	m, count := mean(engine.Estimates())
	fmt.Printf("MEAN %g %d\n", m, count)
	return nil
}

// expect reads lines until one starts with the given tag, returning
// the remainder of that line.
func expect(lines *bufio.Scanner, tag string) (string, error) {
	for lines.Scan() {
		if rest, ok := strings.CutPrefix(lines.Text(), tag+" "); ok {
			return rest, nil
		}
	}
	return "", fmt.Errorf("child exited before printing %s (%v)", tag, lines.Err())
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
