// live_cluster demonstrates bootstrap membership over the TCP
// transport: one gossip population split across THREE OS PROCESSES
// that find each other from a static seed address — no parent-process
// coordination, no stdio handshake. Compare examples/live_udp, where
// the parent must shuttle ephemeral socket addresses through the
// child's stdin/stdout before any datagram can flow: here every member
// is started with the same seed list, announces its own [Lo,Hi) host
// range to it, and blocks until the whole population is mapped
// (live.Bootstrap). Members can start in any order; one that comes up
// before the seed simply retries until the seed exists.
//
// Run it with:
//
//	go run ./examples/live_cluster
//
// The launcher process only spawns the three members and reads their
// result lines — it takes no part in membership. Each member runs
// Push-Sum (dynamic averaging) over its 32-host span and reports its
// span's mean estimate; all three must land on the population mean
// within a few percent, across two process boundaries neither host
// can see.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/pushsum"
)

const (
	hosts   = 96
	members = 3
	ticks   = 60
	pace    = 4 * time.Millisecond
	seed    = 7
)

func main() {
	role := flag.String("role", "launcher", "internal: launcher or member")
	span := flag.String("span", "", "internal: member host range lo:hi")
	listen := flag.String("listen", "127.0.0.1:0", "internal: member listen address")
	seeds := flag.String("seeds", "", "internal: bootstrap seed address list")
	flag.Parse()
	var err error
	if *role == "member" {
		err = runMember(*span, *listen, *seeds)
	} else {
		err = runLauncher()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func truth() float64 {
	var sum float64
	for i := 0; i < hosts; i++ {
		sum += float64(i % 100)
	}
	return sum / hosts
}

// reserveAddr picks a free loopback port for the seed member by
// binding an ephemeral listener and releasing it. The seed member
// re-binds the same port moments later; every member is handed this
// one address up front, which is exactly what a deployment's static
// seed list looks like.
func reserveAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	return addr, ln.Close()
}

// runLauncher spawns the three member processes and verifies their
// reports. It never touches the transport: the members coordinate
// entirely among themselves through the seed address.
func runLauncher() error {
	seedAddr, err := reserveAddr()
	if err != nil {
		return err
	}

	type report struct {
		lo, hi        int
		mean          float64
		sent, dropped int64
	}
	reports := make([]report, members)
	procs := make([]*exec.Cmd, members)
	outs := make([]*bufio.Scanner, members)
	for i := 0; i < members; i++ {
		span := fmt.Sprintf("%d:%d", i*hosts/members, (i+1)*hosts/members)
		listen := "127.0.0.1:0"
		if i == 0 {
			listen = seedAddr // the seed member serves the advertised address
		}
		cmd := exec.Command(os.Args[0], "-role=member",
			"-span="+span, "-listen="+listen, "-seeds="+seedAddr)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning member %d: %w", i, err)
		}
		procs[i], outs[i] = cmd, bufio.NewScanner(stdout)
	}

	for i, sc := range outs {
		found := false
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "MEMBER ") {
				fmt.Println(line) // pass through member chatter
				continue
			}
			r := &reports[i]
			if _, err := fmt.Sscanf(line, "MEMBER %d %d %g %d %d",
				&r.lo, &r.hi, &r.mean, &r.sent, &r.dropped); err != nil {
				return fmt.Errorf("parsing member %d report %q: %w", i, line, err)
			}
			found = true
		}
		if err := procs[i].Wait(); err != nil {
			return fmt.Errorf("member %d: %w", i, err)
		}
		if !found {
			return fmt.Errorf("member %d exited without a MEMBER report", i)
		}
	}

	want := truth()
	fmt.Printf("pushsum over TCP across %d processes bootstrapped from %s (n=%d, %d ticks @ %v):\n",
		members, seedAddr, hosts, ticks, pace)
	failed := false
	for i, r := range reports {
		off := 100 * math.Abs(r.mean-want) / want
		fmt.Printf("  member %d  pid %-6d hosts [%d,%d)  mean %8.3f (%.1f%% off)  sent %d dropped %d\n",
			i, procs[i].Process.Pid, r.lo, r.hi, r.mean, off, r.sent, r.dropped)
		if off > 10 {
			failed = true
		}
	}
	fmt.Printf("  truth %.3f\n", want)
	if failed {
		return fmt.Errorf("a member's span failed to converge to the population mean")
	}
	return nil
}

// runMember is one cluster process: bind the span's listener, let the
// engine bootstrap membership from the seed list, run, report.
func runMember(spanArg, listen, seeds string) error {
	var lo, hi int
	if _, err := fmt.Sscanf(spanArg, "%d:%d", &lo, &hi); err != nil {
		return fmt.Errorf("member: bad -span %q: %w", spanArg, err)
	}
	span := live.Span{Lo: gossip.NodeID(lo), Hi: gossip.NodeID(hi)}

	tr, err := transport.NewTCP(
		transport.WithGroups(transport.Group{Lo: span.Lo, Hi: span.Hi, Addr: listen}),
		transport.WithLocal(0),
	)
	if err != nil {
		return err
	}
	defer tr.Close()

	agents := make([]gossip.Agent, hi-lo)
	for i := range agents {
		id := span.Lo + gossip.NodeID(i)
		agents[i] = pushsum.NewAverage(id, float64(int(id)%100))
	}
	engine, err := live.New(live.Config{
		Env: env.NewUniform(hosts), Population: live.NewAgentPopulation(agents),
		Model: gossip.Push, Seed: seed, Ticks: ticks, TickEvery: pace,
		Transport: tr, Span: span,
		Bootstrap: &live.Bootstrap{
			Seeds: strings.Split(seeds, ","), Span: span, Total: hosts,
			Retry: 50 * time.Millisecond,
		},
	})
	if err != nil {
		return err
	}
	if err := engine.Run(context.Background()); err != nil {
		return err
	}

	var mean float64
	ests := engine.Estimates()
	for _, v := range ests {
		mean += v
	}
	if len(ests) > 0 {
		mean /= float64(len(ests))
	}
	fmt.Printf("MEMBER %d %d %g %d %d\n", lo, hi, mean, engine.Sent(), engine.Dropped())
	return nil
}
