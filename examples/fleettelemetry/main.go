// Command fleettelemetry runs the full Figure 7 deployment in the
// paper's motivating setting: a fleet of 400 vehicles drives through a
// 2 km × 2 km area under random-waypoint mobility, gossiping only with
// vehicles in radio range. Every vehicle maintains, simultaneously:
//
//   - how many vehicles are in the area (Count-Sketch-Reset),
//   - the fleet's average speed and average engine temperature
//     (two named Push-Sum-Revert aggregates riding on the same
//     sketch — the §IV-B amortization),
//   - the total cargo on the road (average × size, Figure 7 step 3),
//   - the hottest engine in the fleet (dynamic max, the age-out
//     extension).
//
// Halfway through, a quarter of the fleet — the fastest vehicles, a
// value-correlated departure — exits the area without telling anyone.
// Every running estimate re-converges to the remaining fleet.
//
// Run it:
//
//	go run ./examples/fleettelemetry
package main

import (
	"fmt"
	"sort"

	"dynagg/internal/core"
	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/xrand"
)

func main() {
	const (
		fleet    = 400
		rounds   = 120
		departAt = 60
		probe    = gossip.NodeID(7)
	)

	// Vehicle telemetry: speed (km/h), engine temperature (°C), cargo (t).
	rng := xrand.New(2024)
	speed := make([]float64, fleet)
	engTemp := make([]float64, fleet)
	cargo := make([]float64, fleet)
	for i := 0; i < fleet; i++ {
		speed[i] = 40 + 60*rng.Float64()
		// Fast engines run hot, so the fleet's hottest engine leaves
		// with the fastest vehicles — the max tracker must age it out.
		engTemp[i] = 60 + speed[i]/2 + 5*rng.Float64()
		cargo[i] = 5 * rng.Float64()
	}

	newMobility := func(seed uint64) *env.Mobile {
		m, err := env.NewMobile(env.MobileConfig{
			N: fleet, Width: 2000, Height: 2000, Range: 150,
			MinSpeed: 10, MaxSpeed: 40, Seed: seed,
		})
		if err != nil {
			panic(err)
		}
		return m
	}

	// The multi-aggregate network: one sketch, two averages. (Separate
	// networks must not share one environment's PRNG-coupled state, so
	// the max tracker gets its own identically-seeded copy.)
	mobility := newMobility(9)
	telemetry, err := core.NewMulti(core.MultiConfig{
		Common: core.Common{Env: mobility, Seed: 1, Model: gossip.PushPull},
		Values: map[string][]float64{"speed": speed, "cargo": cargo},
		Lambda: 0.05,
		// Proximity gossip floods slower than the uniform gossip the
		// default 7+k/4 cutoff is calibrated for (§IV-A); without the
		// allowance, sourced bits age past the cutoff and the size
		// estimate flickers.
		Cutoff: func(k int) float64 { return 35 + float64(k)/2 },
	})
	if err != nil {
		panic(err)
	}
	maxMobility := newMobility(9)
	hottest, err := core.NewExtremum(core.ExtremumConfig{
		Common: core.Common{Env: maxMobility, Seed: 1, Model: gossip.PushPull},
		Values: engTemp,
		Mode:   extremes.Max,
		Cutoff: 40, // proximity gossip floods slower than uniform
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("fleet of %d vehicles, 2×2 km, radio range 150 m (mean degree ≈ %.1f)\n\n",
		fleet, mobility.MeanDegree())
	fmt.Printf("%6s  %8s  %10s  %11s  %11s  %10s\n",
		"round", "fleet", "est. size", "avg speed", "total cargo", "hottest")

	trueStats := func(m *env.Mobile) (size int, avgSpeed, totalCargo, maxTemp float64) {
		for _, id := range m.Population.AliveIDs() {
			size++
			avgSpeed += speed[id]
			totalCargo += cargo[id]
			if engTemp[id] > maxTemp {
				maxTemp = engTemp[id]
			}
		}
		if size > 0 {
			avgSpeed /= float64(size)
		}
		return size, avgSpeed, totalCargo, maxTemp
	}

	for r := 0; r < rounds; r++ {
		if r == departAt {
			departFastest(mobility, maxMobility, speed, fleet/4)
			fmt.Printf("--- the %d fastest vehicles left the area silently ---\n", fleet/4)
		}
		telemetry.Step()
		hottest.Step()
		if (r+1)%15 != 0 && r != departAt {
			continue
		}
		size, avgSpeed, totalCargo, maxTemp := trueStats(mobility)
		estSize, _ := telemetry.SizeOf(probe)
		estSpeed, _ := telemetry.AverageOf(probe, "speed")
		estCargo, _ := telemetry.SumOf(probe, "cargo")
		estMax, _ := hottest.EstimateOf(probe)
		fmt.Printf("%6d  %8d  %10.0f  %5.1f/%4.1f  %6.0f/%4.0f  %5.1f/%4.1f\n",
			r+1, size, estSize, estSpeed, avgSpeed, estCargo, totalCargo, estMax, maxTemp)
	}

	fmt.Println("\n(columns are estimate/truth; all estimates maintained at every vehicle, no infrastructure)")
}

// departFastest silently removes the k fastest vehicles from both
// environment copies.
func departFastest(a, b *env.Mobile, speed []float64, k int) {
	order := make([]int, len(speed))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return speed[order[x]] > speed[order[y]] })
	for _, id := range order[:k] {
		a.Population.Fail(gossip.NodeID(id))
		b.Population.Fail(gossip.NodeID(id))
	}
}
